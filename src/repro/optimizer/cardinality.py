"""Sampling-based cardinality estimation for rank-aware operators (§5.2).

The output cardinality of a rank-aware operator is *context-sensitive*: it
depends on ``k`` and on the operator's position in the complete plan, so it
cannot be propagated bottom-up from base-table statistics.  The paper's
estimator:

1. Build a small (e.g. 0.1%) sample of every table and evaluate all ranking
   predicates on it — reusable across queries.
2. Before enumeration, run the query *conventionally* on the sample for
   ``k' = ceil(k × s%)`` results; the k'-th score ``x'`` estimates ``x``,
   the final k-th result score on the full database.
3. During enumeration, execute each candidate subplan on the sample and
   count ``u``, its outputs scoring above ``x'``.  Scale to the full
   database with the §5.2 propagation formulas:

   * leaf:    ``card(P) = u / s%``
   * unary:   ``card(P) = u × card(P') / cards(P')``
   * binary:  ``card(P) = u × (card(P1)/cards(P1) + card(P2)/cards(P2)) / 2``

   where ``cards(·)`` are the children's *sample* output counts observed
   while running ``P`` on the sample.

Sample executions are memoized per plan fingerprint, as the paper
prescribes ("the results are kept together with P").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..algebra.predicates import ScoringFunction
from ..algebra.rank_relation import rank_order_key, ScoredRow
from ..storage.catalog import Catalog
from ..storage.index import ColumnIndex, MultiKeyIndex, RankIndex
from ..execution.iterator import ExecutionContext
from .plans import BatchSegmentPlan, PlanNode
from .query_spec import QuerySpec

DEFAULT_SAMPLE_RATIO = 0.001
#: Sample executions cap: a runaway subplan on the sample stops here.
MAX_SAMPLE_OUTPUTS = 1_000_000


class SampleDatabase:
    """A parallel catalog holding an s% Bernoulli sample of every table.

    Tables keep their names, so any plan built for the real catalog runs
    unchanged against the sample.  Secondary indexes are rebuilt on the
    sample so rank-scans stay available.
    """

    def __init__(
        self,
        catalog: Catalog,
        ratio: float = DEFAULT_SAMPLE_RATIO,
        seed: int = 0,
        min_rows: int = 1,
    ):
        if not 0 < ratio <= 1:
            raise ValueError("sample ratio must be in (0, 1]")
        self.source = catalog
        self.ratio = ratio
        self.catalog = Catalog()
        rng = random.Random(seed)
        for predicate in catalog.predicates():
            self.catalog.register_predicate(predicate)
        for table in catalog.tables():
            bare_schema = table.schema.with_table(None)
            sample = self.catalog.create_table(table.name, bare_schema)
            chosen = [row for row in table.rows() if rng.random() < ratio]
            if len(chosen) < min_rows and table.row_count:
                # Guarantee a non-empty sample so subplan runs stay defined.
                rows = list(table.rows())
                while len(chosen) < min(min_rows, len(rows)):
                    extra = rows[rng.randrange(len(rows))]
                    if extra not in chosen:
                        chosen.append(extra)
            for row in chosen:
                sample.insert(row.values)
            self._mirror_indexes(table, sample)

    def _mirror_indexes(self, source_table, sample_table) -> None:
        for name, index in source_table.indexes.items():
            if isinstance(index, RankIndex):
                predicate = self.source.predicate(index.predicate_name)
                sample_table.attach_index(
                    RankIndex(
                        name,
                        sample_table.schema,
                        index.predicate_name,
                        predicate.compile(sample_table.schema),
                    )
                )
            elif isinstance(index, MultiKeyIndex):
                predicate = self.source.predicate(index.predicate_name)
                # The sample table keeps the source name, so qualified
                # column references resolve unchanged.
                sample_table.attach_index(
                    MultiKeyIndex(
                        name,
                        sample_table.schema,
                        index.bool_column,
                        index.predicate_name,
                        predicate.compile(sample_table.schema),
                    )
                )
            elif isinstance(index, ColumnIndex):
                sample_table.attach_index(
                    ColumnIndex(name, sample_table.schema, index.column)
                )


@dataclass
class SampleRun:
    """Memoized result of executing one subplan on the sample."""

    outputs_above_cutoff: int
    child_sample_outputs: tuple[int, ...]
    estimated_cardinality: float


class CardinalityEstimator:
    """The §5.2 sampling estimator, bound to one query."""

    def __init__(
        self,
        catalog: Catalog,
        spec: QuerySpec,
        sample: SampleDatabase | None = None,
        ratio: float = DEFAULT_SAMPLE_RATIO,
        seed: int = 0,
    ):
        self.spec = spec
        self.sample = sample or SampleDatabase(catalog, ratio=ratio, seed=seed)
        self.scoring = spec.scoring
        self._memo: dict[str, SampleRun] = {}
        self.cutoff = self._estimate_cutoff()

    # ------------------------------------------------------------------
    # step 2: estimate x' by answering the query conventionally on the sample
    # ------------------------------------------------------------------
    def _estimate_cutoff(self) -> float:
        """``x'``: the k'-th top score of the query run on the sample."""
        k_prime = max(1, math.ceil(self.spec.k * self.sample.ratio))
        results = self._conventional_sample_answer()
        if len(results) < k_prime:
            return -math.inf
        ordered = sorted(results, key=lambda s: rank_order_key(self.scoring, s))
        return self.scoring.upper_bound(ordered[k_prime - 1].scores)

    def _conventional_sample_answer(self) -> list[ScoredRow]:
        """Materialize the full query answer on the sample (naive plan)."""
        catalog = self.sample.catalog
        spec = self.spec
        # Accumulate the filtered cross product table by table.
        current: list[ScoredRow] | None = None
        joined: frozenset[str] = frozenset()
        schema = None
        for table_name in spec.tables:
            table = catalog.table(table_name)
            rows = [ScoredRow(r, {}) for r in table.rows()]
            for condition in spec.selections_on(table_name):
                fn = condition.compile(table.schema)
                rows = [s for s in rows if fn(s.row)]
            if current is None:
                current, schema, joined = rows, table.schema, frozenset({table_name})
                continue
            new_schema = schema.concat(table.schema)
            new_joined = joined | {table_name}
            conditions = [
                j.predicate
                for j in spec.join_conditions_between(joined, frozenset({table_name}))
            ]
            evaluators = [c.compile(new_schema) for c in conditions]
            combined: list[ScoredRow] = []
            for left in current:
                for right in rows:
                    merged = left.merge(right)
                    if all(fn(merged.row) for fn in evaluators):
                        combined.append(merged)
            current, schema, joined = combined, new_schema, new_joined
        assert current is not None and schema is not None
        out: list[ScoredRow] = []
        compiled = {
            p.name: p.compile(schema) for p in self.scoring.predicates
        }
        for scored in current:
            scores = {name: fn(scored.row) for name, fn in compiled.items()}
            out.append(ScoredRow(scored.row, scores))
        return out

    # ------------------------------------------------------------------
    # step 3: per-subplan estimation with the propagation formulas
    # ------------------------------------------------------------------
    def estimate(self, plan: PlanNode) -> float:
        """Estimated output cardinality of ``plan`` on the full database."""
        return self._run(plan).estimated_cardinality

    def sample_outputs(self, plan: PlanNode) -> int:
        """``cards(P)``: the subplan's output count on the sample."""
        return self._run(plan).outputs_above_cutoff

    def _run(self, plan: PlanNode) -> SampleRun:
        # A lowered segment produces the identical tuples as its row-mode
        # twin; estimate (and memoize) through the wrapper so the batch
        # alternative never re-executes a subplan on the sample.
        while isinstance(plan, BatchSegmentPlan):
            plan = plan.inner
        key = plan.fingerprint()
        if key in self._memo:
            return self._memo[key]
        u, child_outputs = self._execute_on_sample(plan)
        card = self._scale(plan, u, child_outputs)
        run = SampleRun(u, child_outputs, card)
        self._memo[key] = run
        return run

    def _execute_on_sample(self, plan: PlanNode) -> tuple[int, tuple[int, ...]]:
        """Run the subplan on the sample; count outputs scoring >= x'."""
        context = ExecutionContext(self.sample.catalog, self.scoring)
        root = plan.build()
        root.open(context)
        try:
            u = 0
            ranked = plan.is_ranked
            while u < MAX_SAMPLE_OUTPUTS:
                scored = root.next()
                if scored is None:
                    break
                above = context.upper_bound(scored) >= self.cutoff
                if above:
                    u += 1
                elif ranked:
                    # Ranked output is descending: nothing above x' follows.
                    break
            children = tuple(
                child_operator.stats.tuples_out
                for child_operator in root.children()
            )
        finally:
            root.close()
        return u, children

    def _scale(self, plan: PlanNode, u: int, child_sample_outputs: tuple[int, ...]) -> float:
        ratio = self.sample.ratio
        if not plan.children:
            return u / ratio
        child_ratios = []
        for child, cards in zip(plan.children, child_sample_outputs):
            child_card = self._run(child).estimated_cardinality
            if cards > 0:
                child_ratios.append(child_card / cards)
            else:
                # Degenerate sample: fall back to the raw sampling ratio.
                child_ratios.append(1.0 / ratio)
        return u * sum(child_ratios) / len(child_ratios)
