"""Physical plan descriptors.

The optimizer manipulates immutable, buildable *descriptors* rather than
live operators: a :class:`PlanNode` tree can be turned into a fresh
:class:`~repro.execution.iterator.PhysicalOperator` tree any number of times
(once against the real catalog, many times against the sample database for
cardinality estimation).

Every node carries the optimizer signature ``(SR, SP)`` — covered base
tables and evaluated ranking predicates (§5.1).
"""

from __future__ import annotations

import copy
from typing import Sequence

from ..algebra.predicates import BooleanPredicate
from ..execution.batch import (
    BatchColumnOrderScan,
    BatchFilter,
    BatchHashJoin,
    BatchNestedLoopJoin,
    BatchOperator,
    BatchProject,
    BatchScan,
    BatchSort,
    BatchSortMergeJoin,
    BatchToRow,
)
from ..execution.filter import Filter, Project
from ..execution.iterator import PhysicalOperator
from ..execution.joins import HRJN, NRJN, HashJoin, NestedLoopJoin, SortMergeJoin
from ..execution.rank import Mu
from ..execution.scans import ColumnOrderScan, RankScan, ScanSelect, SeqScan
from ..execution.setops import RankDifference, RankIntersect, RankUnion
from ..execution.sort import Limit, Sort


class PlanNode:
    """Base class of physical plan descriptors."""

    def __init__(self, children: Sequence["PlanNode"] = ()):
        self.children: tuple[PlanNode, ...] = tuple(children)

    # -- signature -----------------------------------------------------
    @property
    def tables(self) -> frozenset[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.tables
        return frozenset(out)

    @property
    def rank_predicates(self) -> frozenset[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.rank_predicates
        return frozenset(out)

    @property
    def signature(self) -> tuple[frozenset[str], frozenset[str]]:
        return (self.tables, self.rank_predicates)

    #: physical property: column the output is sorted on (interesting order)
    @property
    def column_order(self) -> str | None:
        return None

    @property
    def is_ranked(self) -> bool:
        """Whether the output stream satisfies Definition 1's score order."""
        return True

    # -- construction ----------------------------------------------------
    def build(self) -> PhysicalOperator:
        """Instantiate a fresh physical operator tree."""
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.fingerprint()

    def fingerprint(self) -> str:
        """A canonical string identifying this plan shape (memo key)."""
        if not self.children:
            return self.label()
        inner = ",".join(child.fingerprint() for child in self.children)
        return f"{self.label()}({inner})"

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


# ----------------------------------------------------------------------
# scans
# ----------------------------------------------------------------------

class SeqScanPlan(PlanNode):
    """Sequential heap scan."""

    def __init__(self, table: str):
        super().__init__()
        self.table = table

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    def build(self) -> PhysicalOperator:
        return SeqScan(self.table)

    def label(self) -> str:
        return f"seqScan({self.table})"


class RankScanPlan(PlanNode):
    """Rank-index scan in descending predicate-score order."""

    def __init__(self, table: str, predicate_name: str):
        super().__init__()
        self.table = table
        self.predicate_name = predicate_name

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def rank_predicates(self) -> frozenset[str]:
        return frozenset({self.predicate_name})

    def build(self) -> PhysicalOperator:
        return RankScan(self.table, self.predicate_name)

    def label(self) -> str:
        return f"idxScan_{self.predicate_name}({self.table})"


class ColumnOrderScanPlan(PlanNode):
    """Index scan in column order (interesting order for merge joins)."""

    def __init__(self, table: str, column: str):
        super().__init__()
        self.table = table
        self.column = column

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def column_order(self) -> str | None:
        return self.column

    def build(self) -> PhysicalOperator:
        return ColumnOrderScan(self.table, self.column)

    def label(self) -> str:
        return f"idxScan_{self.column}({self.table})"


class ScanSelectPlan(PlanNode):
    """Scan-based selection via a multi-key index (§4.2)."""

    def __init__(self, table: str, bool_column: str, predicate_name: str):
        super().__init__()
        self.table = table
        self.bool_column = bool_column
        self.predicate_name = predicate_name

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def rank_predicates(self) -> frozenset[str]:
        return frozenset({self.predicate_name})

    def build(self) -> PhysicalOperator:
        return ScanSelect(self.table, self.bool_column, self.predicate_name)

    def label(self) -> str:
        return f"scanSelect_{self.predicate_name}[{self.bool_column}]({self.table})"


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------

class FilterPlan(PlanNode):
    """Boolean selection."""

    def __init__(self, child: PlanNode, condition: BooleanPredicate):
        super().__init__([child])
        self.condition = condition

    @property
    def column_order(self) -> str | None:
        return self.children[0].column_order

    @property
    def is_ranked(self) -> bool:
        return self.children[0].is_ranked

    def build(self) -> PhysicalOperator:
        return Filter(self.children[0].build(), self.condition)

    def label(self) -> str:
        return f"filter({self.condition.name})"


class MuPlan(PlanNode):
    """The rank operator µ_p."""

    def __init__(self, child: PlanNode, predicate_name: str, threshold_mode: str = "drawn"):
        super().__init__([child])
        self.predicate_name = predicate_name
        self.threshold_mode = threshold_mode

    @property
    def rank_predicates(self) -> frozenset[str]:
        return self.children[0].rank_predicates | {self.predicate_name}

    def build(self) -> PhysicalOperator:
        return Mu(self.children[0].build(), self.predicate_name, self.threshold_mode)

    def label(self) -> str:
        return f"rank_{self.predicate_name}"


class ProjectPlan(PlanNode):
    """Projection."""

    def __init__(self, child: PlanNode, columns: Sequence[str]):
        super().__init__([child])
        self.columns = tuple(columns)

    @property
    def is_ranked(self) -> bool:
        return self.children[0].is_ranked

    def build(self) -> PhysicalOperator:
        return Project(self.children[0].build(), self.columns)

    def label(self) -> str:
        return f"project({','.join(self.columns)})"


class SortPlan(PlanNode):
    """Blocking materialize-then-sort on the complete scoring function.

    ``all_predicates`` is the scoring function's full predicate set: a sort
    evaluates every predicate still missing, so its output signature always
    carries them all.
    """

    def __init__(self, child: PlanNode, all_predicates: frozenset[str] = frozenset()):
        super().__init__([child])
        self.all_predicates = frozenset(all_predicates)

    @property
    def rank_predicates(self) -> frozenset[str]:
        return self.all_predicates | self.children[0].rank_predicates

    def build(self) -> PhysicalOperator:
        return Sort(self.children[0].build())

    def label(self) -> str:
        return "sort"


class LimitPlan(PlanNode):
    """λ_k."""

    def __init__(self, child: PlanNode, k: int):
        super().__init__([child])
        self.k = k

    @property
    def rank_predicates(self) -> frozenset[str]:
        return self.children[0].rank_predicates

    @property
    def is_ranked(self) -> bool:
        return self.children[0].is_ranked

    def build(self) -> PhysicalOperator:
        return Limit(self.children[0].build(), self.k)

    def label(self) -> str:
        return f"limit({self.k})"


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------

class HRJNPlan(PlanNode):
    """Hash rank-join on an equi condition."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: str,
        right_key: str,
        threshold_mode: str = "drawn",
    ):
        super().__init__([left, right])
        self.left_key = left_key
        self.right_key = right_key
        self.threshold_mode = threshold_mode

    def build(self) -> PhysicalOperator:
        return HRJN(
            self.children[0].build(),
            self.children[1].build(),
            self.left_key,
            self.right_key,
            self.threshold_mode,
        )

    def label(self) -> str:
        return f"HRJN({self.left_key}={self.right_key})"


class NRJNPlan(PlanNode):
    """Nested-loop rank-join on an arbitrary condition."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: BooleanPredicate,
        threshold_mode: str = "drawn",
    ):
        super().__init__([left, right])
        self.condition = condition
        self.threshold_mode = threshold_mode

    def build(self) -> PhysicalOperator:
        return NRJN(
            self.children[0].build(),
            self.children[1].build(),
            self.condition,
            self.threshold_mode,
        )

    def label(self) -> str:
        return f"NRJN({self.condition.name})"


class SortMergeJoinPlan(PlanNode):
    """Classical sort-merge join (not score-ordered)."""

    def __init__(self, left: PlanNode, right: PlanNode, left_key: str, right_key: str):
        super().__init__([left, right])
        self.left_key = left_key
        self.right_key = right_key

    @property
    def is_ranked(self) -> bool:
        # Output is key-ordered; it satisfies Definition 1 only vacuously,
        # when no predicate has been evaluated below.
        return not self.rank_predicates

    @property
    def column_order(self) -> str | None:
        return self.left_key

    def build(self) -> PhysicalOperator:
        return SortMergeJoin(
            self.children[0].build(),
            self.children[1].build(),
            self.left_key,
            self.right_key,
        )

    def label(self) -> str:
        return f"sortMergeJoin({self.left_key}={self.right_key})"


class HashJoinPlan(PlanNode):
    """Classical hash join (not score-ordered)."""

    def __init__(self, left: PlanNode, right: PlanNode, left_key: str, right_key: str):
        super().__init__([left, right])
        self.left_key = left_key
        self.right_key = right_key

    @property
    def is_ranked(self) -> bool:
        return not self.rank_predicates

    def build(self) -> PhysicalOperator:
        return HashJoin(
            self.children[0].build(),
            self.children[1].build(),
            self.left_key,
            self.right_key,
        )

    def label(self) -> str:
        return f"hashJoin({self.left_key}={self.right_key})"


class NestedLoopJoinPlan(PlanNode):
    """Classical nested-loop join (not score-ordered)."""

    def __init__(self, left: PlanNode, right: PlanNode, condition: BooleanPredicate | None):
        super().__init__([left, right])
        self.condition = condition

    @property
    def is_ranked(self) -> bool:
        return not self.rank_predicates

    def build(self) -> PhysicalOperator:
        return NestedLoopJoin(
            self.children[0].build(),
            self.children[1].build(),
            self.condition,
        )

    def label(self) -> str:
        name = self.condition.name if self.condition else "true"
        return f"nestLoop({name})"


# ----------------------------------------------------------------------
# set operations
# ----------------------------------------------------------------------

class RankUnionPlan(PlanNode):
    """Incremental rank-aware union."""

    def build(self) -> PhysicalOperator:
        return RankUnion(self.children[0].build(), self.children[1].build())

    def label(self) -> str:
        return "rankUnion"


class RankIntersectPlan(PlanNode):
    """Incremental rank-aware intersection (optionally ∩_r, by identity)."""

    def __init__(self, children, by_identity: bool = False):
        super().__init__(children)
        self.by_identity = by_identity

    def build(self) -> PhysicalOperator:
        return RankIntersect(
            self.children[0].build(), self.children[1].build(), self.by_identity
        )

    def label(self) -> str:
        return "rankIntersect_r" if self.by_identity else "rankIntersect"


class RankDifferencePlan(PlanNode):
    """Incremental rank-aware difference."""

    @property
    def rank_predicates(self) -> frozenset[str]:
        return self.children[0].rank_predicates

    def build(self) -> PhysicalOperator:
        return RankDifference(self.children[0].build(), self.children[1].build())

    def label(self) -> str:
        return "rankDifference"


# ----------------------------------------------------------------------
# batched columnar lowering (P = φ segments)
# ----------------------------------------------------------------------

#: descriptor kinds with a batch-operator equivalent.  Rank-aware nodes
#: (MuPlan, RankScanPlan, ScanSelectPlan, the rank joins and set-ops) are
#: deliberately absent: batching them would break incremental, score-ordered
#: emission — the ranking principle forbids bulk execution above µ.
_BATCHABLE = (
    SeqScanPlan,
    ColumnOrderScanPlan,
    FilterPlan,
    ProjectPlan,
    HashJoinPlan,
    SortMergeJoinPlan,
    NestedLoopJoinPlan,
)


def _segment_lowerable(plan: PlanNode) -> bool:
    """Whether an entire subtree is an unranked (``P = φ``) segment made
    exclusively of operators with batch equivalents.

    :class:`BatchSegmentPlan` wrappers are transparent: a subtree that was
    already (partially) lowered — e.g. by the enumerator's per-signature
    batch alternatives — can be absorbed into a larger segment, where the
    nested wrapper dissolves (one frontier crossing, not two).
    """
    if isinstance(plan, BatchSegmentPlan):
        return _segment_lowerable(plan.inner)
    if not isinstance(plan, _BATCHABLE):
        return False
    if plan.rank_predicates:
        return False
    return all(_segment_lowerable(child) for child in plan.children)


def segment_lowerable(plan: PlanNode) -> bool:
    """Public alias of the segment-lowerability test (used by the
    enumerator and the cost-governed decision pass)."""
    return _segment_lowerable(plan)


def _build_batch(plan: PlanNode) -> BatchOperator:
    """Instantiate the batch-operator tree for a lowerable descriptor."""
    if isinstance(plan, BatchSegmentPlan):
        # Nested wrappers dissolve: the enclosing segment is one batch
        # pipeline with a single BatchToRow frontier at its root.
        return _build_batch(plan.inner)
    if isinstance(plan, SeqScanPlan):
        return BatchScan(plan.table)
    if isinstance(plan, ColumnOrderScanPlan):
        return BatchColumnOrderScan(plan.table, plan.column)
    if isinstance(plan, FilterPlan):
        return BatchFilter(_build_batch(plan.children[0]), plan.condition)
    if isinstance(plan, ProjectPlan):
        return BatchProject(_build_batch(plan.children[0]), plan.columns)
    if isinstance(plan, HashJoinPlan):
        return BatchHashJoin(
            _build_batch(plan.children[0]),
            _build_batch(plan.children[1]),
            plan.left_key,
            plan.right_key,
        )
    if isinstance(plan, SortMergeJoinPlan):
        return BatchSortMergeJoin(
            _build_batch(plan.children[0]),
            _build_batch(plan.children[1]),
            plan.left_key,
            plan.right_key,
        )
    if isinstance(plan, NestedLoopJoinPlan):
        return BatchNestedLoopJoin(
            _build_batch(plan.children[0]),
            _build_batch(plan.children[1]),
            plan.condition,
        )
    if isinstance(plan, SortPlan):
        return BatchSort(_build_batch(plan.children[0]))
    raise TypeError(f"no batch equivalent for {plan.label()}")


def _unwrap_segments(plan: PlanNode) -> PlanNode:
    """The same subtree with every :class:`BatchSegmentPlan` wrapper
    replaced by its inner plan (pure; copies only rewritten interiors)."""
    if isinstance(plan, BatchSegmentPlan):
        return _unwrap_segments(plan.inner)
    if not plan.children:
        return plan
    unwrapped = tuple(_unwrap_segments(child) for child in plan.children)
    if all(new is old for new, old in zip(unwrapped, plan.children)):
        return plan
    clone = copy.copy(plan)
    clone.children = unwrapped
    return clone


class BatchSegmentPlan(PlanNode):
    """A maximal ``P = φ`` subtree lowered onto the batched columnar path.

    Wraps the original row-mode descriptor subtree (``inner``); building
    produces the equivalent batch-operator tree topped by the
    :class:`~repro.execution.batch.BatchToRow` frontier adapter, so the
    surrounding plan still sees an ordinary
    :class:`~repro.execution.iterator.PhysicalOperator`.
    """

    def __init__(self, inner: PlanNode, dop: int = 1):
        super().__init__()
        # Nested wrappers dissolve eagerly: a segment absorbed into a
        # larger one is a single batch pipeline with one frontier, and the
        # descriptor tree should say so (affected interior nodes are
        # shallow-copied; memo-shared subtrees are never mutated).
        self.inner = _unwrap_segments(inner)
        #: cost-governed lowering annotation (set by the decision pass /
        #: enumerator when the segment was *priced*, not blindly lowered):
        #: a ``SegmentDecision`` carrying both candidates' estimated costs.
        #: Purely informational — never part of the fingerprint.
        self.decision = None
        #: the segment's degree of parallelism (a costed decision, like
        #: the lowering itself).  Excluded from the fingerprint, same as
        #: ``decision``: two wrappers over the same inner tree produce the
        #: same tuples — DOP only changes *how* they are produced.
        self.dop = max(1, int(dop))
        #: the segment's compiled twin (a
        #: :class:`~repro.execution.codegen.CompiledArtifact`), attached at
        #: prepare time by :func:`repro.optimizer.compile.compile_plan`
        #: when the costed decision picks the compiled regime.  Excluded
        #: from the fingerprint like ``decision`` and ``dop``: the fused
        #: function produces the same tuples, it only changes *how*.
        self.compiled = None

    @property
    def tables(self) -> frozenset[str]:
        return self.inner.tables

    @property
    def rank_predicates(self) -> frozenset[str]:
        return self.inner.rank_predicates

    @property
    def column_order(self) -> str | None:
        return self.inner.column_order

    @property
    def is_ranked(self) -> bool:
        return self.inner.is_ranked

    def build(self) -> PhysicalOperator:
        if self.compiled is not None:
            from ..execution.codegen import CompiledSegmentSource

            # The fused function is serial by construction; the costed
            # decision only picks it when it beats every parallel batch
            # candidate, so dop is irrelevant here.
            return BatchToRow(CompiledSegmentSource(self.compiled))
        return BatchToRow(_build_batch(self.inner), parallelism=self.dop)

    def label(self) -> str:
        return "batch"

    def fingerprint(self) -> str:
        return f"batch({self.inner.fingerprint()})"

    def explain(self, indent: int = 0) -> str:
        head = "batch segment"
        if self.decision is not None:
            head += f" ({self.decision.summary()})"
        elif self.dop > 1:
            head += f" (dop={self.dop})"
        lines = ["  " * indent + head]
        lines.append(self.inner.explain(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        yield from self.inner.walk()


def lower_to_batch(plan: PlanNode, parallelism: int = 1) -> PlanNode:
    """Lower every maximal ``P = φ`` segment of ``plan`` to batch execution.

    Walks the descriptor tree top-down and wraps each maximal unranked
    subtree in a :class:`BatchSegmentPlan`.  A blocking :class:`SortPlan`
    whose *input* is such a segment is the segment's frontier: it lowers to
    :class:`~repro.execution.batch.BatchSort`, which evaluates the complete
    scoring function over column vectors before emitting in rank order —
    the materialize-then-sort shape of traditional plans, executed in bulk.
    Rank-aware operators are never absorbed into a segment, and λ_k stays
    in row mode so consumer-side contracts (cursors, limit stripping,
    top-k hints) are unchanged.

    ``parallelism`` is stamped on every created wrapper as its degree of
    parallelism — this is the *unconditional* lowering pass
    (``batch_execution=True``), so the DOP is the caller's knob verbatim;
    the cost-governed pass (:func:`repro.optimizer.hybrid
    .decide_batch_lowering`) prices DOP per segment instead.

    Nodes are treated as immutable: rewritten interior nodes are shallow
    copies with new child tuples, so a cached row-mode plan and its lowered
    twin can coexist.
    """
    if isinstance(plan, BatchSegmentPlan):
        return plan  # already lowered (idempotent over decided plans)
    if isinstance(plan, SortPlan) and _segment_lowerable(plan.children[0]):
        return BatchSegmentPlan(plan, dop=parallelism)
    if _segment_lowerable(plan):
        return BatchSegmentPlan(plan, dop=parallelism)
    if not plan.children:
        return plan
    lowered = tuple(lower_to_batch(child, parallelism) for child in plan.children)
    if all(new is old for new, old in zip(lowered, plan.children)):
        return plan
    clone = copy.copy(plan)
    clone.children = lowered
    return clone
