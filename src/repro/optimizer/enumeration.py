"""Two-dimensional dynamic-programming plan enumeration (Figure 8) with the
Figure 10 heuristics.

The enumerator extends System-R bottom-up DP with a second dimension: a
subplan's signature is the pair ``(SR, SP)`` of joined relations and
evaluated ranking predicates — the two logical properties of a
rank-relation.  Plans for a signature are generated three ways:

* ``joinPlan`` — joining plans for ``(SR1, SP1)`` and ``(SR2, SP2)``;
* ``rankPlan`` — appending a µ operator to a plan for ``(SR, SP − {p})``;
* ``scanPlan`` — access paths for single relations with at most one
  predicate (seq-scan, rank-scan, scan-based selection, column-order scan).

Per signature only the cheapest plan is kept, except that plans with
distinct *physical properties* (interesting column order — only possible
when ``SP = φ`` — and rank-ordered-ness) survive alongside, exactly as in
System R.

Heuristics (Figure 10), both optional:

* **left-deep** join trees: ``||SR2|| ≤ 1``;
* **greedy µ scheduling**: a µ_pu is appended only if no other applicable
  µ_pv has a strictly higher ``rank`` metric, where
  ``rank(µ) = (1 − card(plan')/card(plan)) / cost(µ)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..algebra.expressions import ColumnRef
from ..algebra.predicates import BooleanPredicate
from ..storage.catalog import Catalog
from ..storage.index import ColumnIndex, MultiKeyIndex, RankIndex
from .cardinality import CardinalityEstimator, SampleDatabase
from .cost_model import CostModel
from .plans import (
    BatchSegmentPlan,
    ColumnOrderScanPlan,
    FilterPlan,
    HRJNPlan,
    HashJoinPlan,
    LimitPlan,
    MuPlan,
    NRJNPlan,
    NestedLoopJoinPlan,
    PlanNode,
    ProjectPlan,
    RankScanPlan,
    ScanSelectPlan,
    SeqScanPlan,
    SortMergeJoinPlan,
    SortPlan,
    segment_lowerable,
)
from .query_spec import JoinCondition, QuerySpec

#: (SR, SP, SB): joined relations, evaluated ranking predicates, applied
#: Boolean selections — the third dimension is the §5.1 extension for
#: scheduling (possibly expensive) selection predicates.
Signature = tuple[frozenset[str], frozenset[str], frozenset[str]]


@dataclass
class Candidate:
    """A plan kept in the memo, with its estimated cost."""

    plan: PlanNode
    cost: float

    @property
    def physical_key(self) -> tuple:
        return (self.plan.column_order, self.plan.is_ranked)


class OptimizationError(Exception):
    """Raised when no complete plan can be constructed."""


class RankAwareOptimizer:
    """Cost-based optimizer with the ranking dimension (§5).

    Parameters
    ----------
    left_deep:
        Restrict join enumeration to left-deep trees (Figure 10, line 2).
    greedy_mu:
        Apply the greedy rank-metric µ-scheduling heuristic (Figure 10,
        lines 4–6).
    enumerate_ranking:
        When False the ranking dimension is disabled (``SP = φ``
        everywhere) and the final plan is completed by a blocking sort —
        this is the *traditional* optimizer baseline.
    enumerate_selections:
        §5.1's extension: treat Boolean selection predicates as a *third*
        enumeration dimension (signature component ``SB``), so expensive
        filters can be scheduled anywhere — interleaved with µ operators or
        deferred above joins — instead of always pushed to the scans.
    batch_execution:
        ``"auto"`` makes batch lowering a *fourth costed decision* inside
        the DP: every generated plan that is a pure ``P = φ`` segment also
        spawns a :class:`~repro.optimizer.plans.BatchSegmentPlan`
        alternative, priced by the same cost model (batch-regime dispatch
        rates, per-segment setup, BatchToRow frontier) and competing in the
        same memo bucket — so the choice between tuple-at-a-time and bulk
        columnar execution is made per segment, per signature, and can in
        turn shift join-order and µ-scheduling decisions.  The default
        (``False``) keeps enumeration purely row-mode (lowering, if any,
        happens in a later pass).
    """

    def __init__(
        self,
        catalog: Catalog,
        spec: QuerySpec,
        sample: SampleDatabase | None = None,
        sample_ratio: float = 0.001,
        seed: int = 0,
        left_deep: bool = False,
        greedy_mu: bool = False,
        enumerate_ranking: bool = True,
        enumerate_selections: bool = False,
        threshold_mode: str = "drawn",
        allow_cartesian: bool = False,
        batch_execution: "bool | str" = False,
    ):
        self.catalog = catalog
        self.spec = spec
        self.estimator = CardinalityEstimator(
            catalog, spec, sample=sample, ratio=sample_ratio, seed=seed
        )
        self.cost_model = CostModel(catalog, spec, self.estimator)
        self.left_deep = left_deep
        self.greedy_mu = greedy_mu
        self.enumerate_ranking = enumerate_ranking
        self.enumerate_selections = enumerate_selections
        self.threshold_mode = threshold_mode
        self.allow_cartesian = allow_cartesian
        #: "auto" prices BatchSegmentPlan alternatives during enumeration
        self.batch_execution = batch_execution
        #: memo: signature -> {physical_key -> Candidate}
        self.memo: dict[Signature, dict[tuple, Candidate]] = {}
        #: number of plans generated (for enumeration-efficiency reports)
        self.plans_generated = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(self) -> PlanNode:
        """Run the DP and return the best complete physical plan."""
        self._enumerate()
        all_tables = frozenset(self.spec.tables)
        all_predicates = (
            frozenset(self.spec.scoring.predicate_names)
            if self.enumerate_ranking
            else frozenset()
        )
        final = self._final_candidates(all_tables)
        if not final:
            if not self.allow_cartesian:
                # Retry once permitting Cartesian products.
                self.allow_cartesian = True
                self.memo.clear()
                return self.optimize()
            raise OptimizationError("no complete plan found")
        best = min(final, key=lambda c: c.cost)
        plan: PlanNode = best.plan
        plan = LimitPlan(plan, self.spec.k)
        if self.spec.projection:
            plan = ProjectPlan(plan, self.spec.projection)
        return plan

    def best_candidate(self, signature) -> Candidate | None:
        """The cheapest memoized candidate for a signature (for inspection).

        Accepts ``(SR, SP)`` — normalized to the full applicable selection
        set — or a full ``(SR, SP, SB)`` triple.
        """
        if len(signature) == 2:
            sr, sp = signature
            signature = (sr, sp, self._selection_names(sr))
        candidates = self.memo.get(signature)
        if not candidates:
            return None
        return min(candidates.values(), key=lambda c: c.cost)

    def _selections_within(self, sr: frozenset[str]) -> list[BooleanPredicate]:
        """Selections whose table lies in ``sr`` (declaration order)."""
        return [c for c in self.spec.selections if c.tables() <= sr]

    def _selection_names(self, sr: frozenset[str]) -> frozenset[str]:
        return frozenset(c.name for c in self._selections_within(sr))

    def _selection_by_name(self, name: str) -> BooleanPredicate:
        for condition in self.spec.selections:
            if condition.name == name:
                return condition
        raise KeyError(f"unknown selection: {name!r}")

    # ------------------------------------------------------------------
    # the DP of Figure 8
    # ------------------------------------------------------------------
    def _enumerate(self) -> None:
        tables = list(self.spec.tables)
        h = len(tables)
        for i in range(1, h + 1):  # 1st dimension: join size
            for sr in itertools.combinations(tables, i):
                sr_set = frozenset(sr)
                evaluable = (
                    self.spec.predicates_evaluable_on(sr_set)
                    if self.enumerate_ranking
                    else []
                )
                applicable = [c.name for c in self._selections_within(sr_set)]
                for j in range(0, len(evaluable) + 1):  # 2nd dimension
                    for sp in itertools.combinations(evaluable, j):
                        sp_set = frozenset(sp)
                        # 3rd dimension: Boolean selections, smallest first
                        if self.enumerate_selections:
                            for b in range(0, len(applicable) + 1):
                                for sb in itertools.combinations(applicable, b):
                                    self._plans_for_signature(
                                        sr_set, sp_set, frozenset(sb)
                                    )
                        else:
                            self._plans_for_signature(
                                sr_set, sp_set, frozenset(applicable)
                            )

    def _plans_for_signature(
        self, sr: frozenset[str], sp: frozenset[str], sb: frozenset[str]
    ) -> None:
        # scanPlan: single relation, at most one predicate (Fig. 8 line 16)
        if len(sr) == 1 and len(sp) <= 1:
            (table,) = sr
            for plan in self._scan_plans(table, sp, sb):
                self._consider(sr, sp, sb, plan)
        # rankPlan: SR2 = φ, SP2 = {p} (Fig. 8 line 14)
        for predicate_name in sorted(sp):
            rest = sp - {predicate_name}
            for candidate in self._candidates(sr, rest, sb):
                if not self._mu_allowed(candidate, predicate_name, sp):
                    continue
                plan = MuPlan(candidate.plan, predicate_name, self.threshold_mode)
                self._consider(sr, sp, sb, plan)
        # filterPlan: the 3rd dimension's move — apply one more selection
        if self.enumerate_selections:
            for selection_name in sorted(sb):
                rest_sb = sb - {selection_name}
                condition = self._selection_by_name(selection_name)
                for candidate in self._candidates(sr, sp, rest_sb):
                    self._consider(
                        sr, sp, sb, FilterPlan(candidate.plan, condition)
                    )
        # joinPlan: SR2 != φ (Fig. 8 line 12)
        if len(sr) >= 2:
            for sr1, sr2 in self._relation_splits(sr):
                # Selections are single-table, so SB splits deterministically.
                sb1 = frozenset(
                    c.name for c in self._selections_within(sr1) if c.name in sb
                )
                sb2 = frozenset(
                    c.name for c in self._selections_within(sr2) if c.name in sb
                )
                if sb1 | sb2 != sb:
                    continue
                for sp1, sp2 in self._predicate_splits(sp, sr1, sr2):
                    for left in self._candidates(sr1, sp1, sb1):
                        for right in self._candidates(sr2, sp2, sb2):
                            for plan in self._join_plans(left, right, sr1, sr2, sr):
                                self._consider(sr, sp, sb, plan)

    def _relation_splits(self, sr: frozenset[str]):
        members = sorted(sr)
        for r in range(1, len(members)):
            for combo in itertools.combinations(members, r):
                sr1 = frozenset(combo)
                sr2 = sr - sr1
                if self.left_deep and len(sr2) > 1:
                    continue
                yield sr1, sr2

    def _predicate_splits(
        self, sp: frozenset[str], sr1: frozenset[str], sr2: frozenset[str]
    ):
        members = sorted(sp)
        for mask in range(2 ** len(members)):
            sp1 = frozenset(m for b, m in enumerate(members) if mask & (1 << b))
            sp2 = sp - sp1
            if not self._evaluable(sp1, sr1) or not self._evaluable(sp2, sr2):
                continue
            yield sp1, sp2

    def _evaluable(self, sp: frozenset[str], sr: frozenset[str]) -> bool:
        evaluable = set(self.spec.predicates_evaluable_on(sr))
        return sp <= evaluable

    def _candidates(
        self, sr: frozenset[str], sp: frozenset[str], sb: frozenset[str]
    ) -> list[Candidate]:
        return list(self.memo.get((sr, sp, sb), {}).values())

    def _consider(
        self,
        sr: frozenset[str],
        sp: frozenset[str],
        sb: frozenset[str],
        plan: PlanNode,
    ) -> None:
        """Cost a generated plan and keep it if it wins its physical class.

        Under ``batch_execution="auto"`` a plan that is a pure ``P = φ``
        segment also spawns its lowered (BatchSegmentPlan) alternative.
        The wrapper shares the row plan's signature and physical
        properties, so the two compete in the same bucket and only the
        cheaper execution regime survives — batch lowering decided by the
        DP, per segment.
        """
        alternatives = [plan]
        if (
            self.batch_execution == "auto"
            and not isinstance(plan, BatchSegmentPlan)
            and segment_lowerable(plan)
        ):
            alternatives.append(BatchSegmentPlan(plan))
        bucket = self.memo.setdefault((sr, sp, sb), {})
        for alternative in alternatives:
            self.plans_generated += 1
            candidate = Candidate(alternative, self.cost_model.cost(alternative))
            key = candidate.physical_key
            incumbent = bucket.get(key)
            if incumbent is None or candidate.cost < incumbent.cost:
                bucket[key] = candidate

    # ------------------------------------------------------------------
    # plan constructors
    # ------------------------------------------------------------------
    def _scan_plans(
        self, table: str, sp: frozenset[str], sb: frozenset[str]
    ) -> list[PlanNode]:
        """Access paths for one relation with zero or one predicate,
        applying exactly the selections in ``sb``."""
        selections = [
            c for c in self.spec.selections_on(table) if c.name in sb
        ]
        catalog_table = self.catalog.table(table)
        plans: list[PlanNode] = []
        if not sp:
            plans.append(self._with_filters(SeqScanPlan(table), selections))
            for index in catalog_table.indexes.values():
                if isinstance(index, ColumnIndex):
                    plans.append(
                        self._with_filters(
                            ColumnOrderScanPlan(table, index.column), selections
                        )
                    )
        else:
            (predicate_name,) = sp
            for index in catalog_table.indexes.values():
                if isinstance(index, RankIndex) and index.predicate_name == predicate_name:
                    plans.append(
                        self._with_filters(
                            RankScanPlan(table, predicate_name), selections
                        )
                    )
                if (
                    isinstance(index, MultiKeyIndex)
                    and index.predicate_name == predicate_name
                ):
                    consumed, remaining = self._match_bool_selection(
                        index.bool_column, selections
                    )
                    if consumed is not None:
                        plans.append(
                            self._with_filters(
                                ScanSelectPlan(table, index.bool_column, predicate_name),
                                remaining,
                            )
                        )
        return plans

    @staticmethod
    def _match_bool_selection(
        bool_column: str, selections: list[BooleanPredicate]
    ) -> tuple[BooleanPredicate | None, list[BooleanPredicate]]:
        """Find a selection that is exactly "bool_column is true"."""
        for i, condition in enumerate(selections):
            expression = condition.expression
            if isinstance(expression, ColumnRef) and (
                expression.name == bool_column
                or expression.name == bool_column.partition(".")[2]
            ):
                return condition, selections[:i] + selections[i + 1:]
        return None, list(selections)

    @staticmethod
    def _with_filters(plan: PlanNode, selections: list[BooleanPredicate]) -> PlanNode:
        for condition in selections:
            plan = FilterPlan(plan, condition)
        return plan

    def _join_plans(
        self,
        left: Candidate,
        right: Candidate,
        sr1: frozenset[str],
        sr2: frozenset[str],
        sr: frozenset[str],
    ) -> list[PlanNode]:
        conditions = self.spec.join_conditions_between(sr1, sr2)
        if not conditions and not self.allow_cartesian:
            return []
        equi = [c for c in conditions if self.condition_keys(c, sr1, sr2)]
        plans: list[PlanNode] = []
        both_ranked = left.plan.is_ranked and right.plan.is_ranked
        has_rank_below = bool(left.plan.rank_predicates | right.plan.rank_predicates)

        if equi and both_ranked:
            primary = equi[0]
            keys = self.condition_keys(primary, sr1, sr2)
            assert keys is not None
            left_key, right_key = keys
            rest = [c.predicate for c in conditions if c is not primary]
            plans.append(
                self._with_filters(
                    HRJNPlan(
                        left.plan, right.plan, left_key, right_key, self.threshold_mode
                    ),
                    rest,
                )
            )
        if conditions and both_ranked and has_rank_below:
            condition = self._conjunction(conditions)
            plans.append(NRJNPlan(left.plan, right.plan, condition, self.threshold_mode))
        if not has_rank_below:
            # Classical joins: valid only when no predicate has been
            # evaluated below (output order is then vacuously rank-valid).
            if equi:
                primary = equi[0]
                keys = self.condition_keys(primary, sr1, sr2)
                assert keys is not None
                left_key, right_key = keys
                rest = [c.predicate for c in conditions if c is not primary]
                plans.append(
                    self._with_filters(
                        SortMergeJoinPlan(left.plan, right.plan, left_key, right_key),
                        rest,
                    )
                )
                plans.append(
                    self._with_filters(
                        HashJoinPlan(left.plan, right.plan, left_key, right_key),
                        rest,
                    )
                )
            condition = self._conjunction(conditions) if conditions else None
            plans.append(NestedLoopJoinPlan(left.plan, right.plan, condition))
        return plans

    @staticmethod
    def condition_keys(
        condition: JoinCondition, sr1: frozenset[str], sr2: frozenset[str]
    ) -> tuple[str, str] | None:
        """Equi-key columns oriented as (left side, right side), if any."""
        if not condition.is_equi:
            return None
        (table_a, key_a), (table_b, key_b) = condition.equi_keys
        if table_a in sr1 and table_b in sr2:
            return key_a, key_b
        if table_b in sr1 and table_a in sr2:
            return key_b, key_a
        return None

    @staticmethod
    def _conjunction(conditions: list[JoinCondition]) -> BooleanPredicate:
        if len(conditions) == 1:
            return conditions[0].predicate
        from ..algebra.expressions import conjunction

        names = " and ".join(c.predicate.name for c in conditions)
        return BooleanPredicate(
            conjunction([c.predicate.expression for c in conditions]), names
        )

    # ------------------------------------------------------------------
    # greedy µ-scheduling heuristic (Figure 10)
    # ------------------------------------------------------------------
    def _mu_allowed(
        self, candidate: Candidate, predicate_name: str, target_sp: frozenset[str]
    ) -> bool:
        if not self.greedy_mu:
            return True
        sr = candidate.plan.tables
        applicable = set(self.spec.predicates_evaluable_on(sr)) - target_sp
        if not applicable:
            return True
        rank_u = self._mu_rank(candidate.plan, predicate_name)
        for other in applicable:
            if self._mu_rank(candidate.plan, other) > rank_u:
                return False
        return True

    def _mu_rank(self, plan: PlanNode, predicate_name: str) -> float:
        """``rank(µ_p) = (1 − card(plan')/card(plan)) / cost(p)``."""
        cost = max(self.spec.scoring.predicate(predicate_name).cost, 1e-9)
        base = self.estimator.estimate(plan)
        if base <= 0:
            return 0.0
        extended = self.estimator.estimate(
            MuPlan(plan, predicate_name, self.threshold_mode)
        )
        selectivity_reduction = 1.0 - min(extended / base, 1.0)
        return selectivity_reduction / cost

    # ------------------------------------------------------------------
    # final assembly
    # ------------------------------------------------------------------
    def _final_candidates(self, all_tables: frozenset[str]) -> list[Candidate]:
        """Complete plans: fully-ranked pipelines plus sort-completions.

        A complete plan must have applied every selection (SB complete).
        """
        all_predicates = frozenset(self.spec.scoring.predicate_names)
        all_selections = self._selection_names(all_tables)
        out: list[Candidate] = []
        if self.enumerate_ranking:
            out.extend(self._candidates(all_tables, all_predicates, all_selections))
        # Sort-completion: finish any partially-ranked plan with a blocking
        # sort (subsumes the traditional materialize-then-sort plan).
        partial_signatures = [
            signature
            for signature in self.memo
            if signature[0] == all_tables
            and signature[1] != all_predicates
            and signature[2] == all_selections
        ]
        for signature in partial_signatures:
            for candidate in self._candidates(*signature):
                plan = SortPlan(candidate.plan, all_predicates)
                out.append(Candidate(plan, self.cost_model.cost(plan)))
                if self.batch_execution == "auto" and segment_lowerable(
                    plan.children[0]
                ):
                    # The batch twin of the materialize-then-sort shape:
                    # the sort is the segment's frontier (BatchSort).
                    wrapped = BatchSegmentPlan(plan)
                    out.append(Candidate(wrapped, self.cost_model.cost(wrapped)))
        return out


def optimize_traditional(
    catalog: Catalog,
    spec: QuerySpec,
    sample: SampleDatabase | None = None,
    sample_ratio: float = 0.001,
    seed: int = 0,
) -> PlanNode:
    """The traditional-optimizer baseline: join enumeration only, blocking
    materialize-then-sort on top (the paper's plan 1 shape)."""
    optimizer = RankAwareOptimizer(
        catalog,
        spec,
        sample=sample,
        sample_ratio=sample_ratio,
        seed=seed,
        enumerate_ranking=False,
    )
    return optimizer.optimize()
