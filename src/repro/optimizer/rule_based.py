"""Volcano/Cascades-style rule-based optimization (§5, first half).

The paper notes that for *top-down, rule-based* optimizers, the algebraic
laws of Figure 5 become **transformation rules** (rewriting between
equivalent logical expressions) and the physical algorithms of §4.2 become
**implementation rules** (mapping logical operators to physical ones).

This module provides exactly that pipeline, complementing the bottom-up DP
of :mod:`repro.optimizer.enumeration`:

1. build the canonical logical plan of Eq. 1 from a :class:`QuerySpec`
   (product of the base tables → selections → monolithic sort → limit);
2. close it under the law rewriter (:func:`repro.algebra.laws.transformations`),
   bounded — the Volcano memo;
3. *implement* each logical plan: map scans to seq-/rank-scans (preferring
   indexes), σ to Filter, µ to Mu, ⋈ to HRJN/NRJN/classical joins, τ to
   Sort, ∪/∩/− to their rank-aware operators;
4. cost every complete physical plan with the shared cost model and keep
   the cheapest.

The search is less thorough than the DP enumerator (it does not reorder
joins beyond what the closure reaches) but demonstrates the transformation-
rule path and is useful for queries with set operations, which the DP
enumerator does not cover.
"""

from __future__ import annotations

from ..algebra.expressions import ColumnRef, Comparison, conjunction
from ..algebra.laws import equivalence_closure
from ..algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalProject,
    LogicalRank,
    LogicalRankScan,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
    LogicalUnion,
)
from ..algebra.predicates import BooleanPredicate
from ..storage.catalog import Catalog
from ..storage.index import RankIndex
from .cardinality import CardinalityEstimator, SampleDatabase
from .cost_model import CostModel
from .enumeration import OptimizationError
from .plans import (
    FilterPlan,
    HRJNPlan,
    LimitPlan,
    MuPlan,
    NRJNPlan,
    NestedLoopJoinPlan,
    PlanNode,
    ProjectPlan,
    RankDifferencePlan,
    RankIntersectPlan,
    RankScanPlan,
    RankUnionPlan,
    SeqScanPlan,
    SortPlan,
)
from .query_spec import QuerySpec


def canonical_logical_plan(spec: QuerySpec, catalog: Catalog) -> LogicalOperator:
    """The Eq. 1 canonical form: π λ_k τ_F σ_B (R1 ⋈ ... ⋈ Rh).

    Join conditions are attached to the joins they connect (the standard
    σ-over-× to ⋈ rewrite, which classical optimizers always apply);
    single-table selections stay in one σ_B above, and the monolithic sort
    τ_F sits on top — the shape the rank-aware laws then improve.
    """
    plan: LogicalOperator | None = None
    joined: frozenset[str] = frozenset()
    attached: set[int] = set()
    for table_name in spec.tables:
        scan = LogicalScan(table_name, catalog.table(table_name).schema)
        if plan is None:
            plan, joined = scan, frozenset({table_name})
            continue
        new_joined = joined | {table_name}
        conditions = [
            (i, j)
            for i, j in enumerate(spec.join_conditions)
            if i not in attached and j.tables <= new_joined
        ]
        condition: BooleanPredicate | None = None
        if conditions:
            attached.update(i for i, __ in conditions)
            expressions = [j.predicate.expression for __, j in conditions]
            names = " and ".join(j.predicate.name for __, j in conditions)
            condition = BooleanPredicate(conjunction(expressions), names)
        plan = LogicalJoin(plan, scan, condition)
        joined = new_joined
    assert plan is not None
    selections = [c.expression for c in spec.selections]
    if selections:
        plan = LogicalSelect(
            plan, BooleanPredicate(conjunction(selections), "B")
        )
    plan = LogicalSort(plan, spec.scoring)
    plan = LogicalLimit(plan, spec.k)
    if spec.projection:
        plan = LogicalProject(plan, spec.projection)
    return plan


class RuleBasedOptimizer:
    """Transformation-rule search over the law closure, then costing."""

    def __init__(
        self,
        catalog: Catalog,
        spec: QuerySpec,
        sample: SampleDatabase | None = None,
        sample_ratio: float = 0.001,
        seed: int = 0,
        max_plans: int = 300,
        threshold_mode: str = "drawn",
    ):
        self.catalog = catalog
        self.spec = spec
        self.estimator = CardinalityEstimator(
            catalog, spec, sample=sample, ratio=sample_ratio, seed=seed
        )
        self.cost_model = CostModel(catalog, spec, self.estimator)
        self.max_plans = max_plans
        self.threshold_mode = threshold_mode
        #: logical plans explored in the last optimize() call
        self.logical_plans_explored = 0

    def optimize(self, logical: LogicalOperator | None = None) -> PlanNode:
        """Search the closure of the (canonical) logical plan; return the
        cheapest implementable physical plan."""
        root = logical or canonical_logical_plan(self.spec, self.catalog)
        closure = equivalence_closure(root, self.spec.scoring, self.max_plans)
        self.logical_plans_explored = len(closure)
        best: PlanNode | None = None
        best_cost = float("inf")
        for candidate in closure:
            for physical in self.implement(candidate):
                cost = self.cost_model.cost(physical)
                if cost < best_cost:
                    best, best_cost = physical, cost
        if best is None:
            raise OptimizationError("no implementable plan in the closure")
        return best

    # ------------------------------------------------------------------
    # implementation rules: logical operator -> physical alternatives
    # ------------------------------------------------------------------
    def implement(self, plan: LogicalOperator) -> list[PlanNode]:
        """All physical implementations of a logical plan (leaf-combinatorial
        growth is bounded by taking the cheapest implementation per child)."""
        if isinstance(plan, LogicalScan):
            return [SeqScanPlan(plan.table_name)]
        if isinstance(plan, LogicalRankScan):
            if self._has_rank_index(plan.table_name, plan.predicate_name):
                return [RankScanPlan(plan.table_name, plan.predicate_name)]
            return [
                MuPlan(SeqScanPlan(plan.table_name), plan.predicate_name,
                       self.threshold_mode)
            ]
        if isinstance(plan, LogicalRank):
            out = []
            for child in self._implemented_children(plan):
                out.append(MuPlan(child, plan.predicate_name, self.threshold_mode))
                # Implementation rule: µ over a base scan with a matching
                # rank index collapses to a rank-scan (Figure 7's
                # "µ_p1 combined with scan ... to form an idxScan").
                if isinstance(plan.child, LogicalScan) and self._has_rank_index(
                    plan.child.table_name, plan.predicate_name
                ):
                    out.append(
                        RankScanPlan(plan.child.table_name, plan.predicate_name)
                    )
            return out
        if isinstance(plan, LogicalSelect):
            return [
                FilterPlan(child, plan.condition)
                for child in self._implemented_children(plan)
            ]
        if isinstance(plan, LogicalProject):
            return [
                ProjectPlan(child, plan.columns)
                for child in self._implemented_children(plan)
            ]
        if isinstance(plan, LogicalSort):
            return [
                SortPlan(child, frozenset(plan.scoring.predicate_names))
                for child in self._implemented_children(plan)
            ]
        if isinstance(plan, LogicalLimit):
            return [
                LimitPlan(child, plan.k)
                for child in self._implemented_children(plan)
            ]
        if isinstance(plan, LogicalJoin):
            return self._implement_join(plan)
        if isinstance(plan, LogicalUnion):
            return self._implement_binary(plan, RankUnionPlan)
        if isinstance(plan, LogicalIntersect):
            left, right = plan.children()
            return [
                RankIntersectPlan(
                    [self._best_child(left), self._best_child(right)],
                    by_identity=plan.by_identity,
                )
            ]
        if isinstance(plan, LogicalDifference):
            return self._implement_binary(plan, RankDifferencePlan)
        raise OptimizationError(f"no implementation rule for {plan.label()}")

    def _best_child(self, child: LogicalOperator) -> PlanNode:
        alternatives = self.implement(child)
        return min(alternatives, key=self.cost_model.cost)

    def _implemented_children(self, plan: LogicalOperator) -> list[PlanNode]:
        (child,) = plan.children()
        return [self._best_child(child)]

    def _implement_binary(self, plan, node_type) -> list[PlanNode]:
        left, right = plan.children()
        return [node_type([self._best_child(left), self._best_child(right)])]

    def _implement_join(self, plan: LogicalJoin) -> list[PlanNode]:
        left = self._best_child(plan.left)
        right = self._best_child(plan.right)
        out: list[PlanNode] = []
        condition = plan.condition
        keys = self._equi_keys(plan)
        ranked_below = bool(left.rank_predicates | right.rank_predicates)
        if keys and left.is_ranked and right.is_ranked:
            out.append(
                HRJNPlan(left, right, keys[0], keys[1], self.threshold_mode)
            )
        if condition is not None and left.is_ranked and right.is_ranked:
            out.append(NRJNPlan(left, right, condition, self.threshold_mode))
        if not ranked_below:
            out.append(NestedLoopJoinPlan(left, right, condition))
        if not out and left.is_ranked and right.is_ranked:
            # Cartesian rank-join: NRJN with a vacuously-true condition.
            from ..algebra.expressions import lit

            out.append(
                NRJNPlan(
                    left,
                    right,
                    BooleanPredicate(lit(True), "true"),
                    self.threshold_mode,
                )
            )
        if not out:
            raise OptimizationError(
                f"join {plan.label()} not implementable over ranked inputs"
            )
        return out

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _has_rank_index(self, table_name: str, predicate_name: str) -> bool:
        table = self.catalog.table(table_name)
        index = table.find_index(key=predicate_name)
        return isinstance(index, RankIndex)

    def _equi_keys(self, plan: LogicalJoin) -> tuple[str, str] | None:
        condition = plan.condition
        if condition is None:
            return None
        expression = condition.expression
        if not (
            isinstance(expression, Comparison)
            and expression.op == "="
            and isinstance(expression.left, ColumnRef)
            and isinstance(expression.right, ColumnRef)
        ):
            return None
        left_schema = plan.left.schema()
        right_schema = plan.right.schema()
        a, b = expression.left.name, expression.right.name
        if left_schema.has_column(a) and right_schema.has_column(b):
            return a, b
        if left_schema.has_column(b) and right_schema.has_column(a):
            return b, a
        return None
