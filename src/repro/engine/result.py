"""Query results."""

from __future__ import annotations

from typing import Any, Iterator

from ..algebra.predicates import ScoringFunction
from ..algebra.rank_relation import ScoredRow
from ..execution.metrics import ExecutionMetrics
from ..optimizer.plans import PlanNode
from ..storage.schema import Schema


class QueryResult:
    """The outcome of executing a (top-k) query.

    Iterable over value tuples; also exposes per-row final scores, the
    executed physical plan, the execution metrics and whether the plan came
    from the plan cache (:attr:`plan_cached`).

    :attr:`plan_cached` is faithful to the optimizer work this execution
    actually skipped: False exactly when the plan was freshly optimized for
    this run — including the *cold template build* of a parameterized
    statement's first ``run(params=...)``, which must never report True no
    matter how many bindings follow it.  It is True when a cached or
    prepared plan was reused without re-optimization, e.g. warm runs of the
    same template with different bindings.
    """

    def __init__(
        self,
        schema: Schema,
        scored_rows: list[ScoredRow],
        scoring: ScoringFunction,
        plan: PlanNode,
        metrics: ExecutionMetrics,
        plan_cached: bool = False,
    ):
        self.schema = schema
        self.scored_rows = scored_rows
        self.scoring = scoring
        self.plan = plan
        self.metrics = metrics
        self.plan_cached = plan_cached

    def __len__(self) -> int:
        return len(self.scored_rows)

    def __iter__(self) -> Iterator[tuple]:
        return (s.row.values for s in self.scored_rows)

    def __getitem__(self, index: int) -> tuple:
        return self.scored_rows[index].row.values

    @property
    def rows(self) -> list[tuple]:
        """Result rows as plain value tuples, best first."""
        return [s.row.values for s in self.scored_rows]

    @property
    def scores(self) -> list[float]:
        """Final (upper-bound = complete, at the root) scores, best first."""
        return [self.scoring.upper_bound(s.scores) for s in self.scored_rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as ``{qualified_column: value}`` dicts plus ``'score'``."""
        names = self.schema.qualified_names()
        out = []
        for scored, score in zip(self.scored_rows, self.scores):
            record: dict[str, Any] = dict(zip(names, scored.row.values))
            record["score"] = score
            out.append(record)
        return out

    def explain(self) -> str:
        """The executed physical plan, pretty-printed."""
        return self.plan.explain()

    def to_csv(self, path, include_score: bool = True) -> int:
        """Write the result rows to a CSV file; returns the row count.

        A trailing ``score`` column holds each row's final score unless
        ``include_score`` is False.
        """
        from .csv_io import dump_csv

        names = self.schema.qualified_names()
        if include_score:
            rows = [
                row + (score,) for row, score in zip(self.rows, self.scores)
            ]
            return dump_csv(rows, names + ["score"], path)
        return dump_csv(self.rows, names, path)


class Cursor:
    """Incremental access to a ranking query's results (§4.1).

    The paper motivates pipelined plans with interactive use: "k may be
    only an estimate of the desired result size or not even specified
    beforehand".  A cursor keeps the plan open and pulls results on demand,
    so the work done is proportional to the number of rows actually
    fetched.  Close it (or use it as a context manager) to release the
    plan.

    Cursors obtained from a :class:`~repro.planner.PreparedQuery` (or
    ``Database.open_cursor``, which routes through one) execute the cached
    plan with its shared compiled evaluators — reopening a cursor on the
    same statement skips enumeration and recompilation.
    """

    def __init__(
        self,
        root,
        context,
        scoring: ScoringFunction,
        plan: PlanNode,
        parameters=None,
    ):
        self._root = root
        self._context = context
        self.scoring = scoring
        self.plan = plan
        #: bind-variable isolation: snapshot the (validated) bindings at
        #: open and restore them before every fetch, so other executions
        #: of the same template cannot change this cursor's predicates
        self._parameters = parameters
        self._bindings = parameters.current() if parameters is not None else None
        self._root.open(context)
        self.schema: Schema = self._root.schema()
        self._closed = False
        self._exhausted = False

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._root.close()
            self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- fetching ----------------------------------------------------------
    def fetch_next(self) -> "tuple | None":
        """The next result row (best first), or None when exhausted."""
        scored = self._fetch_scored()
        if scored is None:
            return None
        return scored.row.values

    def fetch_many(self, n: int) -> list[tuple]:
        """Up to ``n`` further rows."""
        out = []
        for __ in range(n):
            row = self.fetch_next()
            if row is None:
                break
            out.append(row)
        return out

    def fetch_next_scored(self) -> "tuple[tuple, float] | None":
        """The next ``(row, score)`` pair, or None when exhausted."""
        scored = self._fetch_scored()
        if scored is None:
            return None
        return scored.row.values, self.scoring.upper_bound(scored.scores)

    def _fetch_scored(self) -> "ScoredRow | None":
        if self._closed:
            raise RuntimeError("cursor is closed")
        if self._exhausted:
            return None
        if self._parameters is not None:
            self._parameters.restore(self._bindings)
        scored = self._root.next()
        if scored is None:
            self._exhausted = True
        return scored

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetch_next()
            if row is None:
                return
            yield row

    # -- introspection -----------------------------------------------------
    @property
    def metrics(self) -> ExecutionMetrics:
        """Work done so far (grows as rows are fetched)."""
        return self._context.metrics
