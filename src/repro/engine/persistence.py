"""Directory-based persistence: atomic checkpoints and crash recovery.

A database directory holds one ``catalog.json`` manifest (schemas, index
definitions, predicate names, durability state), one CSV per table, and —
for WAL-durable databases — the write-ahead log segments
(:mod:`repro.storage.wal`).

**Every save is an atomic checkpoint.**  Table files are written into a
temp directory inside the target, fsynced, and renamed (``os.replace``)
into place under fresh checkpoint-stamped names (``{table}.ckpt{id}.csv``)
— never overwriting the files the current manifest references.  The new
manifest is then written to a temp name, fsynced, and ``os.replace``d over
``catalog.json``: that single rename is the commit point.  A crash at any
earlier step leaves the previous manifest referencing the previous (still
intact) files; a crash after it leaves only stale garbage, which the next
checkpoint's GC sweep removes.  :func:`save_database` — the plain
``flush()`` path — is exactly this protocol with no WAL attached, so even
non-durable databases can never corrupt their last complete snapshot.

Checkpoint CSVs use the fidelity NULL convention (``\\N`` token — see
:mod:`repro.engine.csv_io`) and carry a leading ``__rid__`` column, so a
restored row keeps its original rid; WAL records reference rows by rid,
and replay would mis-target renumbered rows.

**Recovery** (:func:`load_database`) restores the checkpoint the manifest
names, then — when the manifest records WAL durability — replays every log
segment at or past the manifest's ``wal_epoch``: records are regrouped per
transaction, groups *with* a commit record are applied in commit order
(the original publication order), groups without one are discarded, and a
torn tail (CRC/length mismatch from a crash mid-append) is truncated to
the durable prefix.  No acknowledged commit is lost; no partial
transaction survives.

Ranking predicates are Python callables and cannot be serialized — the
manifest records their *names*, and :func:`load_database` takes a
``predicates`` mapping to re-register them; rank and multi-key indexes are
rebuilt from the restored predicates.
"""

from __future__ import annotations

import csv
import io
import json
import os
import re
from pathlib import Path
from typing import Any, Callable, Mapping

from ..storage.faults import NO_FAULTS, InjectedCrash
from ..storage.index import ColumnIndex, MultiKeyIndex, RankIndex
from ..storage.row import Row
from ..storage.schema import DataType
from ..storage.table import Table, TableVersion
from ..storage.wal import _fsync_directory, committed_groups, scan_segments
from .csv_io import coerce_value, encode_cell, load_csv
from .database import Database

CATALOG_FILE = "catalog.json"
FORMAT_VERSION = 2
#: manifest versions this reader understands (v1: pre-checkpoint in-place
#: saves — plain CSVs, no rids, no durability state)
SUPPORTED_VERSIONS = (1, 2)

RID_COLUMN = "__rid__"
TMP_DIR = ".ckpt.tmp"
_CKPT_FILE = re.compile(r"^(?P<table>.+)\.ckpt(?P<id>\d+)\.csv$")


class PersistenceError(Exception):
    """Raised on malformed database directories or missing predicates."""


# ---------------------------------------------------------------------------
# manifest + table-file rendering
# ---------------------------------------------------------------------------
def _index_entries(indexes: "Mapping[str, Any]") -> list[dict]:
    entries: list[dict] = []
    for index in indexes.values():
        if isinstance(index, ColumnIndex):
            entries.append({"kind": "column", "column": index.column})
        elif isinstance(index, MultiKeyIndex):
            entries.append(
                {
                    "kind": "multikey",
                    "bool_column": index.bool_column,
                    "predicate": index.predicate_name,
                }
            )
        elif isinstance(index, RankIndex):
            entries.append({"kind": "rank", "predicate": index.predicate_name})
    return entries


def _render_table_csv(version: TableVersion) -> bytes:
    """One checkpoint table file as bytes: ``__rid__`` + the schema's
    columns, fidelity NULL convention."""
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow([RID_COLUMN] + version.schema.column_names())
    for row in version.rows():
        ordinal = row.rid[0][1]
        writer.writerow(
            [ordinal] + [encode_cell(v, nulls="token") for v in row.values]
        )
    return buffer.getvalue().encode("utf-8")


def _write_file_atomic(
    path: Path, tmp_dir: Path, data: bytes, injector: Any, torn_site: "str | None"
) -> None:
    """Write ``data`` to a temp file, fsync, rename into ``path``."""
    tmp = tmp_dir / (path.name + ".tmp")
    if torn_site is not None:
        prefix = injector.torn_prefix(torn_site, data)
        if prefix is not None:
            # Crash mid-write(2): the torn bytes land in the temp file,
            # which no manifest will ever reference.
            tmp.write_bytes(prefix)
            raise InjectedCrash(torn_site)
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def latest_checkpoint_id(directory: "str | Path") -> int:
    """The checkpoint id of the current manifest (0 if none)."""
    manifest_path = Path(directory) / CATALOG_FILE
    if not manifest_path.exists():
        return 0
    try:
        with open(manifest_path) as handle:
            return int(json.load(handle).get("checkpoint", 0))
    except (json.JSONDecodeError, ValueError, OSError):
        return 0


def write_checkpoint(
    db: Database,
    directory: "str | Path",
    *,
    checkpoint_id: "int | None" = None,
    state: "Mapping[str, tuple[TableVersion, int]] | None" = None,
    durability: "dict | None" = None,
    injector: Any = NO_FAULTS,
) -> int:
    """Write one atomic checkpoint of ``db`` into ``directory``.

    ``state`` maps table name to ``(version, next_ordinal)`` — the
    snapshot to persist (defaults to the tables' current versions; the
    durable engine captures it under the transaction-manager lock so the
    checkpoint is transaction-consistent with the WAL rotation).
    ``durability`` is stamped into the manifest verbatim (mode, fsync
    discipline, the WAL epoch recovery must replay from).  Returns the
    checkpoint id.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    injector.reach("checkpoint.begin")
    if checkpoint_id is None:
        checkpoint_id = latest_checkpoint_id(path) + 1
    if state is None:
        state = {
            table.name: (table.version(), table.next_ordinal)
            for table in db.catalog.tables()
        }

    tmp_dir = path / TMP_DIR
    tmp_dir.mkdir(exist_ok=True)
    for stale in tmp_dir.iterdir():  # leftovers from a crashed checkpoint
        stale.unlink(missing_ok=True)

    manifest: dict = {
        "version": FORMAT_VERSION,
        "checkpoint": checkpoint_id,
        "tables": [],
        "predicates": [],
        "durability": durability,
    }
    for predicate in db.catalog.predicates():
        manifest["predicates"].append(
            {
                "name": predicate.name,
                "columns": list(predicate.columns),
                "cost": predicate.cost,
                "p_max": predicate.p_max,
            }
        )

    # 1. table files: temp write + fsync + rename to fresh stamped names
    for name in sorted(state):
        version, next_ordinal = state[name]
        rows_file = f"{name}.ckpt{checkpoint_id:06d}.csv"
        _write_file_atomic(
            path / rows_file,
            tmp_dir,
            _render_table_csv(version),
            injector,
            "checkpoint.table.torn",
        )
        manifest["tables"].append(
            {
                "name": name,
                "columns": [
                    {"name": c.name, "type": c.dtype.value}
                    for c in version.schema
                ],
                "rows_file": rows_file,
                "next_ordinal": next_ordinal,
                "indexes": _index_entries(version.indexes),
            }
        )
    _fsync_directory(path)
    injector.reach("checkpoint.tables")

    # 2. manifest: temp write + fsync, then the atomic commit point
    data = json.dumps(manifest, indent=2).encode("utf-8")
    tmp_manifest = path / (CATALOG_FILE + ".tmp")
    with open(tmp_manifest, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    injector.reach("checkpoint.manifest.tmp")
    os.replace(tmp_manifest, path / CATALOG_FILE)
    _fsync_directory(path)
    injector.reach("checkpoint.manifest")

    # 3. GC: checkpoint files no manifest references any more
    for entry in path.iterdir():
        match = _CKPT_FILE.match(entry.name)
        if match and int(match.group("id")) != checkpoint_id:
            injector.reach("checkpoint.gc")
            entry.unlink(missing_ok=True)
    try:
        tmp_dir.rmdir()
    except OSError:
        pass
    return checkpoint_id


def save_database(db: Database, directory: "str | Path") -> None:
    """Write the database to ``directory`` (created if needed) — one
    atomic checkpoint: a crash mid-save always leaves the previous
    complete snapshot loadable."""
    write_checkpoint(db, directory)


# ---------------------------------------------------------------------------
# loading + recovery
# ---------------------------------------------------------------------------
def _restore_table_v2(db: Database, path: Path, entry: dict) -> None:
    table = db.catalog.table(entry["name"])
    rows_file = path / entry["rows_file"]
    if not rows_file.exists():
        raise PersistenceError(
            f"manifest references missing table file: {entry['rows_file']}"
        )
    dtypes = [c.dtype for c in table.schema]
    restored: list[tuple[int, list]] = []
    with open(rows_file, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[0] != RID_COLUMN:
            raise PersistenceError(
                f"table file {rows_file.name} lacks the {RID_COLUMN} column"
            )
        for raw in reader:
            if not raw:
                continue
            restored.append(
                (
                    int(raw[0]),
                    [
                        coerce_value(cell, dtype, nulls="token")
                        for cell, dtype in zip(raw[1:], dtypes)
                    ],
                )
            )
    table.restore_rows(restored, entry.get("next_ordinal", 0))


def replay_wal(db: Database, directory: "str | Path", from_epoch: int) -> dict:
    """Replay committed WAL groups past the checkpoint into ``db``.

    Returns replay stats: committed groups applied, records scanned,
    discarded in-flight transactions, and the highest replayed txn id
    (the id allocator must resume above it).
    """
    records = scan_segments(directory, from_epoch=from_epoch, truncate=True)
    groups = committed_groups(records)
    discarded = len({r.get("txn") for r in records}) - len(groups)
    max_txn = 0
    for group in groups:
        max_txn = max(max_txn, group["txn"])
        # Re-derive the transaction's write set with buffer semantics:
        # deleting a rid the same transaction staged just unstages it.
        staged: dict[str, dict[int, list]] = {}
        deleted: dict[str, set[int]] = {}
        for op in group["ops"]:
            name = op["table"]
            if op["t"] == "insert":
                bucket = staged.setdefault(name, {})
                for ordinal, values in op["rows"]:
                    bucket[ordinal] = values
            else:
                bucket = staged.get(name, {})
                doomed = deleted.setdefault(name, set())
                for ordinal in op["rids"]:
                    if ordinal in bucket:
                        del bucket[ordinal]
                    else:
                        doomed.add(ordinal)
        for name in sorted(set(staged) | set(deleted)):
            table = db.catalog.table(name)
            dead = {
                ((name, ordinal),) for ordinal in deleted.get(name, ())
            }
            rows = [
                Row.base(values, name, ordinal)
                for ordinal, values in sorted(staged.get(name, {}).items())
            ]
            if dead or rows:
                table.apply_commit(dead, rows)
            if rows:
                table.ensure_next_ordinal(rows[-1].rid[0][1] + 1)
    return {
        "records": len(records),
        "replayed": len(groups),
        "discarded": max(0, discarded),
        "max_txn": max_txn,
    }


def load_database(
    directory: "str | Path",
    predicates: Mapping[str, Callable[..., float]] | None = None,
    persist: bool = False,
    durability: "str | None" = "auto",
    fsync: "str | None" = None,
    fault_injector: Any = None,
) -> Database:
    """Restore a database saved by :func:`save_database` or a durable
    checkpoint, replaying the WAL tail when one is attached.

    ``predicates`` maps predicate name to its scoring callable; predicates
    present in the manifest but missing from the mapping are skipped (a
    :class:`PersistenceError` is raised only if a rank index needs them).

    ``durability="auto"`` (default) re-attaches whatever durability mode
    the manifest records, so reopening a WAL-durable directory keeps it
    WAL-durable; pass ``None`` to detach (read-only recovery) or an
    explicit mode to convert.  ``fsync`` likewise defaults to the
    manifest's discipline.

    With ``persist=True`` the directory stays attached: closing the
    returned database (``with load_database(...) as db``) writes changes
    back, so scripts cannot exit with half-written state.
    """
    path = Path(directory)
    manifest_path = path / CATALOG_FILE
    if not manifest_path.exists():
        raise PersistenceError(f"not a database directory: {directory}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    version = manifest.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise PersistenceError(f"unsupported format version: {version!r}")

    predicates = dict(predicates or {})
    db = Database()
    for entry in manifest.get("predicates", []):
        name = entry["name"]
        if name not in predicates:
            continue
        db.register_predicate(
            name,
            entry["columns"],
            predicates[name],
            cost=entry.get("cost", 1.0),
            p_max=entry.get("p_max", 1.0),
        )
    for entry in manifest["tables"]:
        columns = [(c["name"], DataType(c["type"])) for c in entry["columns"]]
        db.create_table(entry["name"], columns)
        if version >= 2:
            _restore_table_v2(db, path, entry)
        else:
            rows_file = path / entry["rows_file"]
            if rows_file.exists():
                db.load_csv(entry["name"], rows_file)

    recorded = manifest.get("durability") or {}
    if recorded.get("mode") == "wal":
        stats = replay_wal(db, path, int(recorded.get("wal_epoch", 0)))
        db.transactions.ensure_txn_id(stats["max_txn"] + 1)
        db.recovery_stats = stats

    # indexes attach after replay: backfill sees the recovered heap once
    for entry in manifest["tables"]:
        for index in entry.get("indexes", []):
            kind = index["kind"]
            if kind == "column":
                db.create_column_index(entry["name"], index["column"])
            elif kind == "rank":
                _require_predicate(db, index["predicate"], entry["name"])
                db.create_rank_index(entry["name"], index["predicate"])
            elif kind == "multikey":
                _require_predicate(db, index["predicate"], entry["name"])
                db.create_multikey_index(
                    entry["name"], index["bool_column"], index["predicate"]
                )
            else:
                raise PersistenceError(f"unknown index kind: {kind!r}")
    db.analyze()

    if durability == "auto":
        durability = recorded.get("mode")
    if fsync is None:
        fsync = recorded.get("fsync", "commit")
    if durability:
        db.attach_durability(
            path,
            mode=durability,
            fsync=fsync,
            fault_injector=fault_injector,
            checkpoint_id=int(manifest.get("checkpoint", 0)),
        )
    elif persist:
        db.persist_dir = path
    return db


def _require_predicate(db: Database, name: str, table: str) -> None:
    if not db.catalog.has_predicate(name):
        raise PersistenceError(
            f"table {table!r} has an index on predicate {name!r}; pass its "
            "callable in the `predicates` mapping to load_database"
        )
