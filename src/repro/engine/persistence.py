"""Directory-based persistence for databases.

``save_database`` writes a catalog to a directory: one ``catalog.json``
(schemas, index definitions) plus one CSV per table.  ``load_database``
restores it.

Ranking predicates are Python callables and cannot be serialized — the
catalog file records their *names*, and :func:`load_database` takes a
``predicates`` mapping to re-register them; rank and multi-key indexes are
rebuilt from the restored predicates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping

from ..algebra.predicates import RankingPredicate
from ..storage.index import ColumnIndex, MultiKeyIndex, RankIndex
from ..storage.schema import DataType
from .csv_io import dump_csv, load_csv
from .database import Database

CATALOG_FILE = "catalog.json"
FORMAT_VERSION = 1


class PersistenceError(Exception):
    """Raised on malformed database directories or missing predicates."""


def save_database(db: Database, directory: "str | Path") -> None:
    """Write the database to ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"version": FORMAT_VERSION, "tables": [], "predicates": []}
    for predicate in db.catalog.predicates():
        manifest["predicates"].append(
            {
                "name": predicate.name,
                "columns": list(predicate.columns),
                "cost": predicate.cost,
                "p_max": predicate.p_max,
            }
        )
    for table in db.catalog.tables():
        entry = {
            "name": table.name,
            "columns": [
                {"name": c.name, "type": c.dtype.value} for c in table.schema
            ],
            "rows_file": f"{table.name}.csv",
            "indexes": [],
        }
        for index in table.indexes.values():
            if isinstance(index, ColumnIndex):
                entry["indexes"].append(
                    {"kind": "column", "column": index.column}
                )
            elif isinstance(index, MultiKeyIndex):
                entry["indexes"].append(
                    {
                        "kind": "multikey",
                        "bool_column": index.bool_column,
                        "predicate": index.predicate_name,
                    }
                )
            elif isinstance(index, RankIndex):
                entry["indexes"].append(
                    {"kind": "rank", "predicate": index.predicate_name}
                )
        manifest["tables"].append(entry)
        dump_csv(
            (row.values for row in table.rows()),
            table.schema.column_names(),
            path / entry["rows_file"],
        )
    with open(path / CATALOG_FILE, "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_database(
    directory: "str | Path",
    predicates: Mapping[str, Callable[..., float]] | None = None,
    persist: bool = False,
) -> Database:
    """Restore a database saved by :func:`save_database`.

    ``predicates`` maps predicate name to its scoring callable; predicates
    present in the manifest but missing from the mapping are skipped (their
    rank indexes are dropped with a :class:`PersistenceError` only if a
    rank index needs them).

    With ``persist=True`` the directory stays attached: closing the
    returned database (``with load_database(...) as db``) writes changes
    back, so scripts cannot exit with half-written state.
    """
    path = Path(directory)
    manifest_path = path / CATALOG_FILE
    if not manifest_path.exists():
        raise PersistenceError(f"not a database directory: {directory}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version: {manifest.get('version')!r}"
        )
    predicates = dict(predicates or {})
    db = Database()
    for entry in manifest.get("predicates", []):
        name = entry["name"]
        if name not in predicates:
            continue
        db.register_predicate(
            name,
            entry["columns"],
            predicates[name],
            cost=entry.get("cost", 1.0),
            p_max=entry.get("p_max", 1.0),
        )
    for entry in manifest["tables"]:
        columns = [
            (c["name"], DataType(c["type"])) for c in entry["columns"]
        ]
        db.create_table(entry["name"], columns)
        rows_file = path / entry["rows_file"]
        if rows_file.exists():
            db.load_csv(entry["name"], rows_file)
        for index in entry.get("indexes", []):
            kind = index["kind"]
            if kind == "column":
                db.create_column_index(entry["name"], index["column"])
            elif kind == "rank":
                _require_predicate(db, index["predicate"], entry["name"])
                db.create_rank_index(entry["name"], index["predicate"])
            elif kind == "multikey":
                _require_predicate(db, index["predicate"], entry["name"])
                db.create_multikey_index(
                    entry["name"], index["bool_column"], index["predicate"]
                )
            else:
                raise PersistenceError(f"unknown index kind: {kind!r}")
    db.analyze()
    if persist:
        db.persist_dir = path
    return db


def _require_predicate(db: Database, name: str, table: str) -> None:
    if not db.catalog.has_predicate(name):
        raise PersistenceError(
            f"table {table!r} has an index on predicate {name!r}; pass its "
            "callable in the `predicates` mapping to load_database"
        )
