"""CSV import/export for tables.

A pragmatic adoption path: load data files into the engine and dump query
results back out, with type coercion driven by the table schema.

Two NULL conventions coexist:

* ``nulls="empty"`` (default) — the interchange convention for foreign
  files: an empty cell is NULL, and NULL dumps as an empty cell.  Lossy
  for TEXT (``""`` and NULL collide) but matches what spreadsheet
  exports produce.
* ``nulls="token"`` — the fidelity convention used by the persistence
  layer: NULL is the token ``\\N``, a TEXT value that itself starts with
  a backslash gets one more prepended on dump (stripped on load), and the
  empty string stays the empty string.  Every value of every
  :class:`DataType` round-trips exactly, including ``""`` vs NULL,
  quotes/newlines (the csv module's own quoting handles those) and
  arbitrarily large ints.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable

from ..storage.schema import DataType, Schema
from ..storage.table import Table

_TRUE_STRINGS = {"true", "t", "yes", "y", "1"}
_FALSE_STRINGS = {"false", "f", "no", "n", "0"}

#: the NULL spelling under ``nulls="token"`` (PostgreSQL's COPY convention)
NULL_TOKEN = "\\N"


def encode_cell(value: Any, nulls: str = "empty") -> Any:
    """The on-disk spelling of one value under the given NULL convention."""
    if value is None:
        return NULL_TOKEN if nulls == "token" else ""
    if nulls == "token" and isinstance(value, str) and value.startswith("\\"):
        return "\\" + value
    return value


def coerce_value(text: str, dtype: DataType, nulls: str = "empty") -> Any:
    """Convert one CSV cell to a Python value of the column's type.

    Under ``nulls="empty"``, empty strings become NULL.  Under
    ``nulls="token"`` only ``\\N`` does (and a leading escape backslash is
    stripped from TEXT), so ``""`` survives as a TEXT value.  Booleans
    accept the usual spellings.
    """
    if nulls == "token":
        if text == NULL_TOKEN:
            return None
        if text.startswith("\\"):
            text = text[1:]
        if dtype is DataType.TEXT:
            return text
        if text == "":
            return None
    elif text == "":
        return None
    if dtype is DataType.INT:
        return int(float(text)) if "." in text or "e" in text.lower() else int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOL:
        lowered = text.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise ValueError(f"cannot parse boolean: {text!r}")
    return text


def read_csv_rows(
    schema: Schema,
    path: "str | Path",
    has_header: bool = True,
    delimiter: str = ",",
    nulls: str = "empty",
) -> list[list[Any]]:
    """Parse a CSV file into schema-typed value rows (no table touched).

    With a header, columns are matched by name (extra file columns are
    ignored, missing table columns become NULL).  Without one, columns are
    taken positionally and must match the schema's arity.
    """
    names = schema.column_names()
    dtypes = {c.name: c.dtype for c in schema}
    staged: list[list[Any]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header: list[str] | None = None
        if has_header:
            header = next(reader, None)
            if header is None:
                return staged
            header = [h.strip() for h in header]
        for raw in reader:
            if not raw:
                continue
            if header is not None:
                by_name = dict(zip(header, raw))
                values = [
                    coerce_value(by_name[n], dtypes[n], nulls)
                    if n in by_name
                    else None
                    for n in names
                ]
            else:
                if len(raw) != len(names):
                    raise ValueError(
                        f"row has {len(raw)} fields, schema needs {len(names)}"
                    )
                values = [
                    coerce_value(cell, dtypes[n], nulls)
                    for cell, n in zip(raw, names)
                ]
            staged.append(values)
    return staged


def load_csv(
    table: Table,
    path: "str | Path",
    has_header: bool = True,
    delimiter: str = ",",
    nulls: str = "empty",
) -> int:
    """Load a CSV file into a table; returns the number of rows inserted.
    See :func:`read_csv_rows` for the column-matching rules."""
    staged = read_csv_rows(
        table.schema, path, has_header=has_header, delimiter=delimiter, nulls=nulls
    )
    # One bulk insert: rows validated up front, indexes touched once.
    return table.insert_many(staged)


def dump_csv(
    rows: Iterable[tuple],
    column_names: list[str],
    path: "str | Path",
    delimiter: str = ",",
    nulls: str = "empty",
) -> int:
    """Write rows (e.g. ``QueryResult.rows``) to a CSV file with a header."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(column_names)
        for row in rows:
            writer.writerow([encode_cell(v, nulls) for v in row])
            count += 1
    return count
