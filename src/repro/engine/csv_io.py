"""CSV import/export for tables.

A pragmatic adoption path: load data files into the engine and dump query
results back out, with type coercion driven by the table schema.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable

from ..storage.schema import DataType, Schema
from ..storage.table import Table

_TRUE_STRINGS = {"true", "t", "yes", "y", "1"}
_FALSE_STRINGS = {"false", "f", "no", "n", "0"}


def coerce_value(text: str, dtype: DataType) -> Any:
    """Convert one CSV cell to a Python value of the column's type.

    Empty strings become NULL.  Booleans accept the usual spellings.
    """
    if text == "":
        return None
    if dtype is DataType.INT:
        return int(float(text)) if "." in text or "e" in text.lower() else int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOL:
        lowered = text.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise ValueError(f"cannot parse boolean: {text!r}")
    return text


def load_csv(
    table: Table,
    path: "str | Path",
    has_header: bool = True,
    delimiter: str = ",",
) -> int:
    """Load a CSV file into a table; returns the number of rows inserted.

    With a header, columns are matched by name (extra file columns are
    ignored, missing table columns become NULL).  Without one, columns are
    taken positionally and must match the schema's arity.
    """
    schema: Schema = table.schema
    names = schema.column_names()
    dtypes = {c.name: c.dtype for c in schema}
    staged: list[list[Any]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header: list[str] | None = None
        if has_header:
            header = next(reader, None)
            if header is None:
                return 0
            header = [h.strip() for h in header]
        for raw in reader:
            if not raw:
                continue
            if header is not None:
                by_name = dict(zip(header, raw))
                values = [
                    coerce_value(by_name[n], dtypes[n]) if n in by_name else None
                    for n in names
                ]
            else:
                if len(raw) != len(names):
                    raise ValueError(
                        f"row has {len(raw)} fields, schema needs {len(names)}"
                    )
                values = [
                    coerce_value(cell, dtypes[n]) for cell, n in zip(raw, names)
                ]
            staged.append(values)
    # One bulk insert: rows validated up front, indexes touched once.
    return table.insert_many(staged)


def dump_csv(
    rows: Iterable[tuple],
    column_names: list[str],
    path: "str | Path",
    delimiter: str = ",",
) -> int:
    """Write rows (e.g. ``QueryResult.rows``) to a CSV file with a header."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(column_names)
        for row in rows:
            writer.writerow(["" if v is None else v for v in row])
            count += 1
    return count
