"""The RankSQL engine façade.

:class:`Database` wires the whole stack together: storage, SQL front end,
rank-aware optimizer and execution engine.

Typical use::

    db = Database()
    db.create_table("hotel", [("price", DataType.FLOAT), ("stars", DataType.INT)])
    db.insert("hotel", [(120.0, 4), (80.0, 3)])
    db.register_predicate("cheap", ["hotel.price"], lambda p: max(0, 1 - p / 200))
    db.create_rank_index("hotel", "cheap")
    result = db.query("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 1")
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..algebra.expressions import Expression
from ..algebra.operators import LogicalOperator
from ..algebra.predicates import RankingPredicate, ScoringFunction
from ..execution.iterator import ExecutionContext, run_plan
from ..optimizer.cardinality import SampleDatabase
from ..optimizer.enumeration import RankAwareOptimizer, optimize_traditional
from ..optimizer.plans import PlanNode
from ..optimizer.query_spec import QuerySpec
from ..optimizer.rule_based import RuleBasedOptimizer
from ..sql.binder import Binder
from ..sql.parser import parse
from ..storage.catalog import Catalog
from ..storage.index import ColumnIndex, MultiKeyIndex, RankIndex
from ..storage.schema import Column, DataType, Schema
from ..storage.table import Table
from .result import QueryResult

ColumnSpec = "str | tuple[str, DataType] | Column"


class Database:
    """An in-memory rank-aware relational database."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self._sample_cache: dict[tuple[float, int], SampleDatabase] = {}

    # ------------------------------------------------------------------
    # schema & data definition
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[ColumnSpec]) -> Table:
        """Create a table from terse column specs.

        Each spec is a name (FLOAT by default), a ``(name, DataType)`` pair,
        or a full :class:`Column`.
        """
        resolved: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                resolved.append(spec)
            elif isinstance(spec, str):
                resolved.append(Column(spec, DataType.FLOAT))
            else:
                column_name, dtype = spec
                resolved.append(Column(column_name, dtype))
        self._sample_cache.clear()
        return self.catalog.create_table(name, Schema(resolved))

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert value tuples; returns the number inserted."""
        self._sample_cache.clear()
        return self.catalog.table(table).insert_many(rows)

    def insert_dicts(self, table: str, rows: Iterable[dict[str, Any]]) -> int:
        """Bulk-insert ``{column: value}`` dicts."""
        self._sample_cache.clear()
        return self.catalog.table(table).insert_dicts(rows)

    def load_csv(self, table: str, path: Any, has_header: bool = True) -> int:
        """Load a CSV file into a table (typed per the table schema)."""
        from .csv_io import load_csv

        self._sample_cache.clear()
        return load_csv(self.catalog.table(table), path, has_header=has_header)

    def analyze(self, table: str | None = None) -> None:
        """(Re)compute statistics for one table or all tables."""
        if table is not None:
            self.catalog.analyze(table)
            return
        for t in self.catalog.tables():
            self.catalog.analyze(t.name)

    # ------------------------------------------------------------------
    # ranking predicates & indexes
    # ------------------------------------------------------------------
    def register_predicate(
        self,
        name: str,
        columns: Sequence[str],
        scorer: Expression | Callable[..., float],
        cost: float = 1.0,
        p_max: float = 1.0,
        spin_loops: int = 0,
    ) -> RankingPredicate:
        """Register a named ranking predicate (user-defined function).

        ``spin_loops`` adds busy-work per evaluation so the abstract
        ``cost`` also shows in wall time (benchmarking aid).
        """
        predicate = RankingPredicate(
            name, columns, scorer, cost=cost, p_max=p_max, spin_loops=spin_loops
        )
        self.catalog.register_predicate(predicate)
        return predicate

    def create_column_index(self, table: str, column: str) -> ColumnIndex:
        """Ordered index on a column (equality probes, interesting order)."""
        t = self.catalog.table(table)
        qualified = column if "." in column else f"{table}.{column}"
        index = ColumnIndex(f"{table}_{column.replace('.', '_')}_idx", t.schema, qualified)
        t.attach_index(index)
        self._sample_cache.clear()
        return index

    def create_rank_index(self, table: str, predicate_name: str) -> RankIndex:
        """Function-based index enabling rank-scans on a predicate."""
        t = self.catalog.table(table)
        predicate = self.catalog.predicate(predicate_name)
        index = RankIndex(
            f"{table}_{predicate_name}_rankidx",
            t.schema,
            predicate_name,
            predicate.compile(t.schema),
        )
        t.attach_index(index)
        self._sample_cache.clear()
        return index

    def create_multikey_index(
        self, table: str, bool_column: str, predicate_name: str
    ) -> MultiKeyIndex:
        """Composite (Boolean column, predicate score) index enabling
        scan-based selection (§4.2)."""
        t = self.catalog.table(table)
        predicate = self.catalog.predicate(predicate_name)
        qualified = bool_column if "." in bool_column else f"{table}.{bool_column}"
        index = MultiKeyIndex(
            f"{table}_{bool_column.replace('.', '_')}_{predicate_name}_mkidx",
            t.schema,
            qualified,
            predicate_name,
            predicate.compile(t.schema),
        )
        t.attach_index(index)
        self._sample_cache.clear()
        return index

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def bind(self, sql: str) -> QuerySpec:
        """Parse and bind a SQL string to a query spec."""
        return Binder(self.catalog).bind(parse(sql))

    def optimizer(
        self,
        spec: QuerySpec,
        sample_ratio: float = 0.001,
        seed: int = 0,
        **kwargs: Any,
    ) -> RankAwareOptimizer:
        """A rank-aware optimizer for a spec (sample database cached)."""
        sample = self._sample(sample_ratio, seed)
        return RankAwareOptimizer(self.catalog, spec, sample=sample, **kwargs)

    def plan(self, query: "str | QuerySpec", **kwargs: Any) -> PlanNode:
        """Optimize a SQL string or spec into a physical plan."""
        spec = self.bind(query) if isinstance(query, str) else query
        return self.optimizer(spec, **kwargs).optimize()

    def plan_traditional(self, query: "str | QuerySpec", **kwargs: Any) -> PlanNode:
        """The materialize-then-sort baseline plan for a query."""
        spec = self.bind(query) if isinstance(query, str) else query
        sample = self._sample(kwargs.pop("sample_ratio", 0.001), kwargs.pop("seed", 0))
        return optimize_traditional(self.catalog, spec, sample=sample, **kwargs)

    def query(self, query: "str | QuerySpec", **kwargs: Any) -> QueryResult:
        """Optimize and execute a query; returns its top-k results."""
        spec = self.bind(query) if isinstance(query, str) else query
        plan = self.optimizer(spec, **kwargs).optimize()
        return self.execute(plan, spec.scoring, k=spec.k)

    def open_cursor(self, query: "str | QuerySpec", **kwargs: Any) -> "Cursor":
        """Optimize a query and return an incremental :class:`Cursor`.

        The cursor is not bounded by the query's LIMIT — it keeps producing
        ranked results on demand (the paper's "k ... not even specified
        beforehand" scenario) until the plan is exhausted or the cursor is
        closed.
        """
        from .result import Cursor

        spec = self.bind(query) if isinstance(query, str) else query
        plan = self.optimizer(spec, **kwargs).optimize()
        # Strip the top-level limit so fetching may continue past k.
        from ..optimizer.plans import LimitPlan, ProjectPlan

        unlimited = plan
        if isinstance(unlimited, ProjectPlan) and isinstance(
            unlimited.children[0], LimitPlan
        ):
            unlimited = ProjectPlan(
                unlimited.children[0].children[0], unlimited.columns
            )
        elif isinstance(unlimited, LimitPlan):
            unlimited = unlimited.children[0]
        context = ExecutionContext(self.catalog, spec.scoring)
        return Cursor(unlimited.build(), context, spec.scoring, unlimited)

    def execute(
        self,
        plan: PlanNode,
        scoring: ScoringFunction,
        k: int | None = None,
    ) -> QueryResult:
        """Execute a physical plan, pulling at most ``k`` results."""
        context = ExecutionContext(self.catalog, scoring)
        root = plan.build()
        root.open(context)
        try:
            schema = root.schema()
            out = []
            while k is None or len(out) < k:
                scored = root.next()
                if scored is None:
                    break
                out.append(scored)
        finally:
            root.close()
        return QueryResult(schema, out, scoring, plan, context.metrics)

    def explain(self, query: "str | QuerySpec", **kwargs: Any) -> str:
        """The optimizer's chosen plan for a query, pretty-printed."""
        return self.plan(query, **kwargs).explain()

    def explain_analyze(
        self,
        query: "str | QuerySpec",
        sample_ratio: float = 0.01,
        seed: int = 0,
        **kwargs: Any,
    ) -> str:
        """Optimize, execute and annotate the plan with estimated vs actual
        per-operator statistics (the engine's EXPLAIN ANALYZE)."""
        from ..optimizer.explain import explain_analyze

        spec = self.bind(query) if isinstance(query, str) else query
        sample = self._sample(sample_ratio, seed)
        plan = self.optimizer(
            spec, sample_ratio=sample_ratio, seed=seed, **kwargs
        ).optimize()
        report = explain_analyze(
            self.catalog, spec, plan, sample=sample, seed=seed
        )
        return report.render()

    def query_logical(
        self,
        logical: LogicalOperator,
        spec: QuerySpec,
        k: int | None = None,
        sample_ratio: float = 0.001,
        seed: int = 0,
        **kwargs: Any,
    ) -> QueryResult:
        """Optimize and execute a hand-built *logical* plan.

        Routes through the rule-based (transformation + implementation
        rules) optimizer, which supports the full algebra including the
        rank-aware set operations ∪, ∩, − — use this for queries the SQL
        dialect cannot express, e.g. the union of two ranked relations.
        ``spec`` supplies the scoring function, ``k`` and the statistics
        context (its table list should cover the plan's tables).
        """
        optimizer = RuleBasedOptimizer(
            self.catalog,
            spec,
            sample=self._sample(sample_ratio, seed),
            **kwargs,
        )
        physical = optimizer.optimize(logical=logical)
        return self.execute(physical, spec.scoring, k=k if k is not None else spec.k)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sample(self, ratio: float, seed: int) -> SampleDatabase:
        key = (ratio, seed)
        if key not in self._sample_cache:
            self._sample_cache[key] = SampleDatabase(
                self.catalog, ratio=ratio, seed=seed
            )
        return self._sample_cache[key]
