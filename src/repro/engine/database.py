"""The RankSQL engine façade.

:class:`Database` wires the whole stack together: storage, SQL front end,
the staged :class:`~repro.planner.Planner` (parse → bind → optimize →
plan cache) and the execution engine.

Typical use::

    with Database() as db:
        db.create_table("hotel", [("price", DataType.FLOAT), ("stars", DataType.INT)])
        db.insert("hotel", [(120.0, 4), (80.0, 3)])
        db.register_predicate("cheap", ["hotel.price"], lambda p: max(0, 1 - p / 200))
        db.create_rank_index("hotel", "cheap")
        result = db.query("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 1")

Repeated traffic should go through prepared statements or sessions, which
reuse cached plans and compiled predicate evaluators::

    top = db.prepare("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 1")
    top.run()          # planned once
    top.run(k=5)       # executes only; k may exceed the prepared LIMIT

Bind variables let one cached plan serve many constants (template reuse)::

    q = db.prepare(
        "SELECT * FROM hotel WHERE hotel.price <= :max_price "
        "ORDER BY cheap(hotel.price) LIMIT 5"
    )
    q.run(params={"max_price": 150.0})   # planned here (bind peeking)
    q.run(params={"max_price": 90.0})    # same plan, new binding

Every schema, data, index or statistics change invalidates the plan cache,
so cached plans never go stale.

**Thread model.**  The storage layer is versioned (copy-on-write
publication per table) and the planner's bookkeeping is lock-guarded, so
concurrent *reads* are always safe and writers never block readers.
Concurrent multi-client traffic should go through the serving subsystem —
:meth:`Database.serve` / :mod:`repro.server` — which additionally gives
every statement a consistent :meth:`snapshot` across tables captured at
admission, serializes statements per session, and makes parameterized
executions of one cached template atomic.  The bare embedded API stays
single-client: calling ``db.query`` from many threads without the server
is safe per-statement but reads current table versions independently
(statement-level consistency only) and must not interleave parameterized
runs of one template.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from ..algebra.expressions import Expression
from ..algebra.operators import LogicalOperator
from ..algebra.predicates import RankingPredicate, ScoringFunction
from ..execution.iterator import EvaluatorCache, ExecutionContext, collect_plan
from ..observe import MetricsRegistry, Tracer
from ..observe import system_tables as _system_tables
from ..optimizer.enumeration import RankAwareOptimizer
from ..optimizer.plans import PlanNode
from ..optimizer.query_spec import QuerySpec
from ..planner import Planner, PreparedQuery, Session
from ..storage.catalog import Catalog
from ..storage.faults import NO_FAULTS
from ..storage.index import ColumnIndex, MultiKeyIndex, RankIndex
from ..storage.row import Row
from ..storage.schema import Column, DataType, Schema
from ..storage.snapshot import DatabaseSnapshot
from ..storage.table import Table
from ..storage.transaction import (
    SerializationError,
    Transaction,
    TransactionManager,
    retry_backoff,
)
from ..storage.wal import WriteAheadLog
from .result import QueryResult

#: the durability modes ``Database(durability=...)`` accepts
DURABILITY_MODES = ("wal", "checkpoint")

ColumnSpec = "str | tuple[str, DataType] | Column"


def _default_batch_execution() -> "bool | str":
    """The engine-wide default execution mode: ``"auto"`` (cost-governed
    hybrid), overridable via the ``REPRO_BATCH_EXECUTION`` environment
    variable (``false`` | ``true`` | ``auto``) so whole test suites and CI
    jobs can pin a mode without touching call sites."""
    raw = os.environ.get("REPRO_BATCH_EXECUTION")
    if raw is None:
        return "auto"
    value = raw.strip().lower()
    if value in ("false", "0", "off", "row"):
        return False
    if value in ("true", "1", "on", "always"):
        return True
    if value == "auto":
        return "auto"
    raise ValueError(
        f"unknown REPRO_BATCH_EXECUTION value {raw!r}; "
        "expected false, true or auto"
    )


def _default_execution() -> str:
    """The engine-wide execution-regime default: ``"auto"`` (cost-governed
    across row, batch and compiled), overridable via the
    ``REPRO_COMPILED_EXECUTION`` environment variable (``1``/``true``/
    ``on``/``always`` force compilation, ``0``/``false``/``off`` keep the
    interpreted batch path, or an explicit mode name) so whole test suites
    and CI jobs can pin the regime without touching call sites."""
    from ..planner.planner import execution_mode_from_env

    mode = execution_mode_from_env(os.environ.get("REPRO_COMPILED_EXECUTION"))
    return "auto" if mode is None else mode


def _default_parallelism() -> "int | str":
    """The engine-wide DOP ceiling default: ``1`` (serial), overridable via
    the ``REPRO_PARALLELISM`` environment variable (a positive integer or
    ``auto`` = core count) so CI jobs can turn on intra-query parallelism
    for a whole suite without touching call sites."""
    raw = os.environ.get("REPRO_PARALLELISM")
    if raw is None:
        return 1
    value = raw.strip().lower()
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(
            f"unknown REPRO_PARALLELISM value {raw!r}; "
            "expected a positive integer or auto"
        ) from None
    if parsed < 1:
        raise ValueError(
            f"unknown REPRO_PARALLELISM value {raw!r}; "
            "expected a positive integer or auto"
        )
    return parsed


class Database:
    """An in-memory rank-aware relational database.

    ``persist_dir`` attaches a persistence directory: :meth:`flush` (and
    :meth:`close`, hence ``with Database(...)``) writes the catalog and all
    table data there, so scripts cannot exit with half-written state.

    ``batch_execution`` selects how unranked (``P = φ``) plan segments
    reach the batched columnar executor (:mod:`repro.execution.batch`);
    results, scores and tie order are identical in every mode:

    * ``"auto"`` (default) — **cost-governed hybrid execution**: the
      optimizer prices each segment's row-regime and batch-regime costs in
      one cost model and lowers only where batch wins, so tiny segments
      stay tuple-at-a-time while large drained segments run columnar.
      ``explain`` shows both candidates' costs and the winner per segment.
    * ``True`` — unconditionally lower every segment (the pre-costed
      behaviour, kept for benchmarking the decision itself).
    * ``False`` — pure tuple-at-a-time (Volcano) execution everywhere —
      the row-mode escape hatch for debugging or apples-to-apples operator
      benchmarking.

    When omitted, the mode honours the ``REPRO_BATCH_EXECUTION``
    environment variable (``false`` | ``true`` | ``auto``).

    ``parallelism`` is the **DOP ceiling** for morsel-driven intra-query
    parallelism: the optimizer may choose any per-segment degree of
    parallelism up to it (a costed decision, like batch lowering).  ``1``
    (the default) disables the parallel regime entirely; ``"auto"``
    resolves to the machine's core count.  When omitted, honours the
    ``REPRO_PARALLELISM`` environment variable.

    ``execution`` is the session-level regime selector across all three
    execution strategies:

    * ``"auto"`` (default) — cost-governed: each lowerable segment is
      priced as row, batch (at every candidate DOP) **and** compiled
      (plan-to-code, :mod:`repro.execution.codegen`), and the cheapest
      regime wins.  ``explain`` footers show all three costs.
    * ``"row"`` — pure tuple-at-a-time execution (same as
      ``batch_execution=False``).
    * ``"batch"`` — cost-governed row-vs-batch with compilation disabled.
    * ``"compiled"`` — force compilation of every supported segment;
      unsupported shapes silently fall back to the interpreted batch
      pipeline (results are identical in every mode).

    When omitted, honours the ``REPRO_COMPILED_EXECUTION`` environment
    variable.
    """

    def __init__(
        self,
        persist_dir: "str | Path | None" = None,
        batch_execution: "bool | str | None" = None,
        parallelism: "int | str | None" = None,
        execution: "str | None" = None,
        durability: "str | None" = None,
        fsync: str = "commit",
        fault_injector: Any = None,
    ) -> None:
        if batch_execution is None:
            batch_execution = _default_batch_execution()
        if parallelism is None:
            parallelism = _default_parallelism()
        if execution is None:
            execution = _default_execution()
        self.catalog = Catalog()
        #: the engine's observability pair: every query gets a trace in
        #: :attr:`tracer` (``REPRO_TRACE`` / ``REPRO_SLOW_QUERY_MS``
        #: knobs) and every subsystem registers into :attr:`registry` —
        #: the single source the ``stats`` wire op, ``system.*`` tables,
        #: Prometheus endpoint and CLI ``\stats`` all read.
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.planner = Planner(
            self.catalog,
            batch_execution=batch_execution,
            parallelism=parallelism,
            execution=execution,
            tracer=self.tracer,
        )
        #: multi-statement transactions (BEGIN/COMMIT/ROLLBACK).  Commit is
        #: the *only* transactional path that invalidates the plan cache —
        #: buffered writes never do, rollbacks never do.
        self.transactions = TransactionManager(
            self.catalog, on_commit=self._invalidate
        )
        self.transactions.tracer = self.tracer
        self._register_metrics()
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        #: durability state — None until :meth:`attach_durability`
        self.durability: "str | None" = None
        self.fsync_mode = fsync
        self.fault_injector = NO_FAULTS if fault_injector is None else fault_injector
        self.wal: "WriteAheadLog | None" = None
        #: stats from the last WAL replay (set by ``load_database``)
        self.recovery_stats: "dict | None" = None
        self._checkpoint_id = 0
        self._closed = False
        if durability is not None:
            if persist_dir is None:
                raise ValueError(
                    "durability requires a persist_dir to write to"
                )
            self.attach_durability(
                persist_dir,
                mode=durability,
                fsync=fsync,
                fault_injector=fault_injector,
            )

    @property
    def batch_execution(self) -> "bool | str":
        """The engine's execution mode (``False`` | ``True`` | ``"auto"``)."""
        return self.planner.batch_execution

    @property
    def parallelism(self) -> int:
        """The engine's DOP ceiling (1 = serial execution)."""
        return self.planner.parallelism

    @property
    def execution(self) -> str:
        """The engine's execution-regime selector
        (``"auto"`` | ``"row"`` | ``"batch"`` | ``"compiled"``)."""
        return self.planner.execution

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, flush: bool = True) -> None:
        """Flush persistence (when attached) and drop every cached plan.

        Idempotent; using the database afterwards raises ``RuntimeError``.
        ``flush=False`` closes without writing (used when a ``with`` block
        exits via an exception, so a half-mutated state never overwrites
        the last consistent on-disk snapshot).
        """
        if self._closed:
            return
        if flush:
            self.flush()
        if self.wal is not None:
            self.wal.close()
        self.planner.invalidate()
        self._closed = True

    def flush(self) -> None:
        """Checkpoint the database to ``persist_dir`` (no-op when not
        attached).  Always atomic: a crash mid-flush leaves the previous
        complete on-disk snapshot loadable."""
        if self.persist_dir is not None:
            self.checkpoint()

    def attach_durability(
        self,
        directory: "str | Path",
        mode: str = "wal",
        fsync: str = "commit",
        fault_injector: Any = None,
        checkpoint_id: "int | None" = None,
    ) -> None:
        """Attach a durability directory to this database.

        ``mode="wal"`` opens (or continues) the write-ahead log there and
        makes every commit — transactional or autocommit — durable at its
        commit record; ``mode="checkpoint"`` skips per-commit logging and
        makes state durable only at :meth:`checkpoint`/:meth:`flush`/DDL.
        A directory with no manifest yet gets an initial checkpoint, so a
        durable database is loadable from its very first commit.
        """
        from .persistence import CATALOG_FILE, latest_checkpoint_id

        if mode not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability mode {mode!r}; expected one of "
                f"{DURABILITY_MODES} or None"
            )
        self.persist_dir = Path(directory)
        self.persist_dir.mkdir(parents=True, exist_ok=True)
        self.durability = mode
        self.fsync_mode = fsync
        if fault_injector is not None:
            self.fault_injector = fault_injector
        if checkpoint_id is None:
            checkpoint_id = latest_checkpoint_id(self.persist_dir)
        self._checkpoint_id = checkpoint_id
        if mode == "wal":
            self.wal = WriteAheadLog(
                self.persist_dir, fsync=fsync, injector=self.fault_injector
            )
            self.transactions.wal = self.wal
        if not (self.persist_dir / CATALOG_FILE).exists():
            self.checkpoint()

    def checkpoint(self) -> int:
        """Write one atomic checkpoint to ``persist_dir``; returns its id.

        With a WAL attached, the table-version capture and the WAL
        rotation happen under the transaction-manager lock, so the
        checkpoint contains exactly the commits of the pre-rotation
        segments; the manifest stamps the new epoch and old segments are
        garbage-collected once the manifest swap (the atomic commit
        point) has succeeded.
        """
        from .persistence import write_checkpoint

        if self.persist_dir is None:
            raise RuntimeError("no persist_dir attached to checkpoint into")
        state = None
        durability = None
        new_epoch = None
        if self.wal is not None:
            with self.transactions.exclusive():
                state = {
                    table.name: (table.version(), table.next_ordinal)
                    for table in self.catalog.tables()
                }
                new_epoch = self.wal.rotate()
            durability = {
                "mode": "wal",
                "fsync": self.fsync_mode,
                "wal_epoch": new_epoch,
            }
        elif self.durability == "checkpoint":
            durability = {
                "mode": "checkpoint",
                "fsync": self.fsync_mode,
                "wal_epoch": 0,
            }
        self._checkpoint_id = write_checkpoint(
            self,
            self.persist_dir,
            checkpoint_id=self._checkpoint_id + 1,
            state=state,
            durability=durability,
            injector=self.fault_injector,
        )
        if self.wal is not None and new_epoch is not None:
            self.wal.remove_segments_before(new_epoch)
        return self._checkpoint_id

    def _ddl_checkpoint(self) -> None:
        """Schema changes are not WAL-logged; a durable database persists
        them by checkpointing immediately."""
        if self.durability is not None and self.persist_dir is not None:
            self.checkpoint()

    def run_transaction(
        self,
        fn: "Callable[[Transaction], Any]",
        retries: int = 10,
        backoff: float = 0.01,
        session: "str | None" = None,
    ) -> Any:
        """Run ``fn(txn)`` in a transaction, retrying serialization
        conflicts with jittered exponential backoff.

        ``fn`` gets a fresh :class:`Transaction` per attempt; the helper
        commits after ``fn`` returns (unless ``fn`` already finished the
        transaction) and rolls back on any exception.  After ``retries``
        conflict retries the :class:`SerializationError` propagates.
        Returns ``fn``'s result.
        """
        self._check_open()
        attempt = 0
        while True:
            txn = self.begin(session=session)
            try:
                result = fn(txn)
                if txn.active:
                    txn.commit()
                return result
            except SerializationError:
                txn.rollback()
                if attempt >= retries:
                    raise
                time.sleep(retry_backoff(attempt, backoff))
                attempt += 1
            except BaseException:
                txn.rollback()
                raise

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Only a clean exit persists; an exception keeps the previous
        # consistent snapshot instead of flushing half-mutated state.
        self.close(flush=exc_type is None)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("database is closed")

    def _invalidate(self) -> None:
        """Invalidate cached plans/samples after a schema/data/stats change."""
        self.planner.invalidate()

    def _register_metrics(self) -> None:
        """Register every subsystem into the metrics registry.

        Counters the subsystems already keep (planner, plan cache,
        transaction manager, WAL, morsel pool, tracer) are bridged as
        callback gauges — one source of truth, no double bookkeeping.
        Native instruments are the per-query ones nothing kept before:
        ``query.count`` and the bounded ``query.ms`` latency histogram.
        """
        from ..execution import morsels

        registry = self.registry
        self._queries_total = registry.counter(
            "query.count", "queries executed on any surface"
        )
        self._query_ms = registry.histogram(
            "query.ms", "end-to-end query latency in milliseconds"
        )
        planner_metrics = self.planner.metrics
        for name in ("binds", "prepares", "plans_built", "plans_compiled",
                     "invalidations"):
            registry.gauge(
                f"planner.{name}", f"planner lifetime {name}",
                fn=lambda n=name, m=planner_metrics: getattr(m, n),
            )
        cache_stats = self.planner.cache.stats
        for name in ("hits", "misses", "evictions", "invalidations"):
            registry.gauge(
                f"plan_cache.{name}", f"plan cache {name}",
                fn=lambda n=name, s=cache_stats: getattr(s, n),
            )
        manager = self.transactions
        for name in ("begun", "committed", "rolled_back", "conflicts"):
            registry.gauge(
                f"txn.{name}", f"transactions {name}",
                fn=lambda n=name, m=manager: getattr(m, n),
            )
        registry.gauge(
            "wal.records_appended", "WAL records appended since open",
            fn=lambda: self.wal.records_appended if self.wal else 0,
        )
        registry.gauge(
            "morsels.pool_workers", "shared morsel pool worker count",
            fn=lambda: morsels.pool_summary()["morsel_pool_workers"],
        )
        registry.gauge(
            "morsels.pool_started", "whether the shared morsel pool exists",
            fn=lambda: morsels.pool_summary()["morsel_pool_started"],
        )
        tracer = self.tracer
        for name in ("traces_started", "traces_finished", "slow_queries"):
            registry.gauge(
                f"trace.{name}", f"tracer lifetime {name}",
                fn=lambda n=name, t=tracer: getattr(t, n),
            )

    def _record_feedback(self, entry, plan: PlanNode, root: Any) -> None:
        """Fold one execution's per-operator actuals into the entry's
        :class:`~repro.observe.feedback.PlanFeedback` (built lazily at
        first execution, with estimates from the same sampling estimator
        that priced the plan)."""
        from ..observe.feedback import PlanFeedback

        feedback = entry.feedback
        if feedback is None:
            try:
                from ..optimizer.cardinality import CardinalityEstimator

                estimator = CardinalityEstimator(
                    self.catalog, entry.spec, sample=self.planner.sample(0.001, 0)
                )
            except Exception:
                estimator = None
            feedback = PlanFeedback.build(plan, root, estimator)
            # benign last-writer-wins race: concurrent first executions
            # build equivalent node lists
            entry.feedback = feedback
        feedback.record(plan, root)

    # ------------------------------------------------------------------
    # schema & data definition
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[ColumnSpec]) -> Table:
        """Create a table from terse column specs.

        Each spec is a name (FLOAT by default), a ``(name, DataType)`` pair,
        or a full :class:`Column`.
        """
        self._check_open()
        resolved: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                resolved.append(spec)
            elif isinstance(spec, str):
                resolved.append(Column(spec, DataType.FLOAT))
            else:
                column_name, dtype = spec
                resolved.append(Column(column_name, dtype))
        self._invalidate()
        created = self.catalog.create_table(name, Schema(resolved))
        self._ddl_checkpoint()
        return created

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert value tuples; returns the number inserted.

        On a WAL-durable database, autocommit DML runs as a one-statement
        transaction so it is logged and crash-safe like any commit.
        """
        self._check_open()
        with self.tracer.trace(f"INSERT INTO {table}", surface="dml"):
            self.tracer.annotate(regime="dml")
            if self.wal is not None:
                with self.begin(session="autocommit") as txn:
                    return txn.insert(self.catalog.table(table), rows)
            self._invalidate()
            return self.catalog.table(table).insert_many(rows)

    def insert_dicts(self, table: str, rows: Iterable[dict[str, Any]]) -> int:
        """Bulk-insert ``{column: value}`` dicts."""
        self._check_open()
        if self.wal is not None:
            t = self.catalog.table(table)
            names = t.schema.column_names()
            known = set(names)
            staged: list[list[Any]] = []
            for mapping in rows:
                unknown = set(mapping) - known
                if unknown:
                    from ..storage.schema import SchemaError

                    raise SchemaError(
                        f"unknown columns for table {table!r}: {sorted(unknown)}"
                    )
                staged.append([mapping.get(n) for n in names])
            with self.begin(session="autocommit") as txn:
                return txn.insert(t, staged)
        self._invalidate()
        return self.catalog.table(table).insert_dicts(rows)

    def load_csv(self, table: str, path: Any, has_header: bool = True) -> int:
        """Load a CSV file into a table (typed per the table schema)."""
        from .csv_io import load_csv, read_csv_rows

        self._check_open()
        t = self.catalog.table(table)
        if self.wal is not None:
            staged = read_csv_rows(t.schema, path, has_header=has_header)
            with self.begin(session="autocommit") as txn:
                return txn.insert(t, staged)
        self._invalidate()
        return load_csv(t, path, has_header=has_header)

    def delete_where(
        self,
        table: str,
        condition: "Callable[[Row], bool] | None" = None,
        *,
        column: str | None = None,
        equals: Any = None,
    ) -> int:
        """Delete rows matching ``condition(row)`` — or, for the simple
        (wire-friendly) form, rows whose ``column`` equals ``equals``.

        Publishes a new table version without the matching rows; readers
        admitted on an older snapshot still see them (snapshot isolation).
        Returns the number deleted.
        """
        self._check_open()
        t = self.catalog.table(table)
        if (condition is None) == (column is None):
            raise ValueError("pass exactly one of: condition, column=/equals=")
        with self.tracer.trace(f"DELETE FROM {table}", surface="dml"):
            self.tracer.annotate(regime="dml")
            if self.wal is not None:
                with self.begin(session="autocommit") as txn:
                    if condition is not None:
                        return txn.delete_where(t, condition)
                    return txn.delete_where(t, column=column, equals=equals)
            if condition is None:
                qualified = column if "." in column else f"{table}.{column}"
                position = t.schema.index_of(qualified)
                value = equals

                def condition(row: Row, _p=position, _v=value) -> bool:
                    return row[_p] == _v

            deleted = t.delete_where(condition)
            if deleted:
                self._invalidate()
            return deleted

    def analyze(self, table: str | None = None) -> None:
        """(Re)compute statistics for one table or all tables."""
        self._check_open()
        self._invalidate()
        if table is not None:
            self.catalog.analyze(table)
            return
        for t in self.catalog.tables():
            self.catalog.analyze(t.name)

    # ------------------------------------------------------------------
    # ranking predicates & indexes
    # ------------------------------------------------------------------
    def register_predicate(
        self,
        name: str,
        columns: Sequence[str],
        scorer: Expression | Callable[..., float],
        cost: float = 1.0,
        p_max: float = 1.0,
        spin_loops: int = 0,
    ) -> RankingPredicate:
        """Register a named ranking predicate (user-defined function).

        ``spin_loops`` adds busy-work per evaluation so the abstract
        ``cost`` also shows in wall time (benchmarking aid).
        """
        self._check_open()
        predicate = RankingPredicate(
            name, columns, scorer, cost=cost, p_max=p_max, spin_loops=spin_loops
        )
        self.catalog.register_predicate(predicate)
        self._ddl_checkpoint()
        return predicate

    def create_column_index(self, table: str, column: str) -> ColumnIndex:
        """Ordered index on a column (equality probes, interesting order)."""
        self._check_open()
        t = self.catalog.table(table)
        qualified = column if "." in column else f"{table}.{column}"
        index = ColumnIndex(f"{table}_{column.replace('.', '_')}_idx", t.schema, qualified)
        t.attach_index(index)
        self._invalidate()
        self._ddl_checkpoint()
        return index

    def create_rank_index(self, table: str, predicate_name: str) -> RankIndex:
        """Function-based index enabling rank-scans on a predicate."""
        self._check_open()
        t = self.catalog.table(table)
        predicate = self.catalog.predicate(predicate_name)
        index = RankIndex(
            f"{table}_{predicate_name}_rankidx",
            t.schema,
            predicate_name,
            predicate.compile(t.schema),
        )
        t.attach_index(index)
        self._invalidate()
        self._ddl_checkpoint()
        return index

    def create_multikey_index(
        self, table: str, bool_column: str, predicate_name: str
    ) -> MultiKeyIndex:
        """Composite (Boolean column, predicate score) index enabling
        scan-based selection (§4.2)."""
        self._check_open()
        t = self.catalog.table(table)
        predicate = self.catalog.predicate(predicate_name)
        qualified = bool_column if "." in bool_column else f"{table}.{bool_column}"
        index = MultiKeyIndex(
            f"{table}_{bool_column.replace('.', '_')}_{predicate_name}_mkidx",
            t.schema,
            qualified,
            predicate_name,
            predicate.compile(t.schema),
        )
        t.attach_index(index)
        self._invalidate()
        self._ddl_checkpoint()
        return index

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def bind(self, sql: str) -> QuerySpec:
        """Parse and bind a SQL string to a query spec."""
        self._check_open()
        return self.planner.bind(sql)

    def optimizer(
        self,
        spec: QuerySpec,
        sample_ratio: float = 0.001,
        seed: int = 0,
        **kwargs: Any,
    ) -> RankAwareOptimizer:
        """A rank-aware optimizer for a spec (sample database cached)."""
        self._check_open()
        return self.planner.optimizer(
            spec, sample_ratio=sample_ratio, seed=seed, **kwargs
        )

    def plan(self, query: "str | QuerySpec", **kwargs: Any) -> PlanNode:
        """Optimize a SQL string or spec into a physical plan (cached)."""
        self._check_open()
        return self.planner.plan(query, strategy="rank-aware", **kwargs)

    def plan_traditional(self, query: "str | QuerySpec", **kwargs: Any) -> PlanNode:
        """The materialize-then-sort baseline plan for a query."""
        self._check_open()
        return self.planner.plan(query, strategy="traditional", **kwargs)

    def prepare(
        self,
        query: "str | QuerySpec",
        strategy: str = "rank-aware",
        params: Any = None,
        **kwargs: Any,
    ) -> PreparedQuery:
        """Plan a query once and return a reusable :class:`PreparedQuery`.

        ``prepared.run(k=...)`` executes without re-planning (the plan cache
        and compiled evaluators are shared); catalog changes transparently
        trigger a re-plan on the next run.

        Parameterized statements (``?`` / ``:name``) are planned once per
        *template*: pass initial ``params`` to plan eagerly, or omit them
        and planning happens on the first ``run(params=...)``.
        """
        self._check_open()
        return PreparedQuery(self, query, strategy=strategy, params=params, **kwargs)

    def session(self, **settings: Any) -> Session:
        """A client session carrying per-client planner settings/metrics."""
        self._check_open()
        return Session(self, **settings)

    # ------------------------------------------------------------------
    # concurrent serving
    # ------------------------------------------------------------------
    def snapshot(self) -> DatabaseSnapshot:
        """A consistent, immutable capture of every table's current version.

        O(#tables) reference copies — cheap enough to take per statement.
        Pass it to :meth:`query` / :meth:`execute` to pin what the plan
        reads; the serving subsystem does this at statement admission.

        Capture serializes with transaction commit publication (one short
        manager lock), so a snapshot always observes whole commits — never
        one table of a multi-table transaction without the other.
        """
        self._check_open()
        return self.transactions.capture()

    def begin(self, session: "str | None" = None) -> Transaction:
        """Start a multi-statement transaction (embedded surface).

        All the transaction's reads see the snapshot captured here plus
        its own buffered writes; ``txn.commit()`` publishes atomically with
        first-committer-wins conflict detection (raising
        :class:`~repro.storage.transaction.SerializationError` on loss),
        ``txn.rollback()`` discards.  Usable as a context manager
        (commit on clean exit, rollback on exception)::

            with db.begin() as txn:
                txn.insert(db.catalog.table("kv"), [(1, 42)])
        """
        self._check_open()
        return self.transactions.begin(session=session)

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        workers: int = 4,
        record_history: bool = False,
        metrics_port: int | None = None,
        **session_defaults: Any,
    ) -> "QueryServer":
        """Start a concurrent multi-session server over this database.

        Returns the started :class:`~repro.server.QueryServer`.  With
        ``port=None`` only the in-process client surface is available
        (``server.session()``); pass ``port=0`` for an ephemeral TCP port
        or a concrete port for ``python -m repro``-style serving.  All
        sessions share this database's plan cache; every statement reads a
        snapshot captured at admission.  ``record_history=True`` logs
        every finished transaction for the black-box isolation checker
        (``server.history()`` harvests it; see :mod:`repro.verify`).
        ``metrics_port`` additionally starts a Prometheus-text HTTP
        endpoint (``GET /metrics``; 0 = ephemeral).
        """
        from ..server import QueryServer

        self._check_open()
        return QueryServer(
            self,
            workers=workers,
            host=host,
            port=port,
            record_history=record_history,
            metrics_port=metrics_port,
            **session_defaults,
        ).start()

    def query(
        self,
        query: "str | QuerySpec",
        params: Any = None,
        snapshot: DatabaseSnapshot | None = None,
        strategy: str = "rank-aware",
        **kwargs: Any,
    ) -> QueryResult:
        """Optimize (with plan caching) and execute a query.

        ``params`` binds ``?`` / ``:name`` placeholders: a sequence for
        positional parameters, a mapping for named ones.  All bindings of
        one template share a single cached plan, so repeated calls with
        varying constants skip optimization entirely.

        ``snapshot`` (from :meth:`snapshot`) executes against the captured
        table versions instead of the live catalog — the embedded route to
        the same snapshot-isolated reads the server gives every statement.
        """
        self._check_open()
        if isinstance(query, str):
            virtual = _system_tables.maybe_execute(
                query, self.tracer, self.registry
            )
            if virtual is not None:
                return virtual
        sql = query if isinstance(query, str) else "<QuerySpec>"
        with self.tracer.trace(sql, surface="query"):
            entry, hit = self.planner.prepare(
                query, strategy=strategy, params=params, **kwargs
            )
            self.tracer.annotate(regime=entry.regime())
            return self.execute(
                entry.executable,
                entry.scoring,
                k=entry.k,
                evaluators=entry.evaluators,
                plan_cached=hit,
                snapshot=snapshot,
                entry=entry,
            )

    def open_cursor(
        self, query: "str | QuerySpec", params: Any = None, **kwargs: Any
    ) -> "Cursor":
        """Optimize a query and return an incremental :class:`Cursor`.

        The cursor is not bounded by the query's LIMIT — it keeps producing
        ranked results on demand (the paper's "k ... not even specified
        beforehand" scenario) until the plan is exhausted or the cursor is
        closed.
        """
        return self.prepare(query, **kwargs).cursor(params=params)

    def execute(
        self,
        plan: PlanNode,
        scoring: ScoringFunction,
        k: int | None = None,
        evaluators: EvaluatorCache | None = None,
        plan_cached: bool = False,
        snapshot: DatabaseSnapshot | None = None,
        entry: Any = None,
    ) -> QueryResult:
        """Execute a physical plan, pulling at most ``k`` results.

        ``evaluators`` shares compiled predicate evaluators across
        executions (the prepared/cached warm path).  ``snapshot`` pins the
        table versions every scan reads (snapshot-isolated execution);
        ``None`` reads the live catalog.  ``entry`` (the
        :class:`~repro.planner.cache.CachedPlan` this plan came from, when
        known) receives per-operator estimated-vs-actual feedback.

        This is the single execution funnel — every surface (embedded
        ``query``, prepared statements, server sessions) lands here, so
        the execute span, the latency histogram and the feedback fold
        cover all of them.
        """
        self._check_open()
        context = ExecutionContext(
            snapshot if snapshot is not None else self.catalog,
            scoring,
            evaluators=evaluators,
        )
        context.tracer = self.tracer
        start = time.perf_counter()
        root = plan.build()
        with self.tracer.span("execute"):
            schema, out = collect_plan(root, context, k)
        self._queries_total.inc()
        self._query_ms.observe((time.perf_counter() - start) * 1000.0)
        if entry is not None:
            self._record_feedback(entry, plan, root)
        return QueryResult(
            schema, out, scoring, plan, context.metrics, plan_cached=plan_cached
        )

    def explain(
        self,
        query: "str | QuerySpec",
        strategy: str = "rank-aware",
        **kwargs: Any,
    ) -> str:
        """The optimizer's chosen plan for a query, pretty-printed.

        Under ``batch_execution="auto"`` the tree marks every lowered
        segment (``batch segment (row cost=… vs batch cost=… -> batch)``)
        and a footer lists the per-segment pricing for segments that
        stayed row-mode as well — every priced regime's cost (row, batch,
        and compiled when the execution mode enables it) and which won.
        """
        self._check_open()
        entry, __ = self.planner.prepare(query, strategy=strategy, **kwargs)
        text = entry.plan.explain()
        if entry.decisions:
            from ..optimizer.hybrid import render_decisions

            text += "\n" + render_decisions(entry.decisions)
        return text

    def explain_analyze(
        self,
        query: "str | QuerySpec",
        sample_ratio: float = 0.01,
        seed: int = 0,
        params: Any = None,
        strategy: str = "rank-aware",
        **kwargs: Any,
    ) -> str:
        """Optimize, execute and annotate the plan with estimated vs actual
        per-operator statistics (the engine's EXPLAIN ANALYZE).

        Compiled segments report as a single fused node (the whole
        segment's wall time on one ``compiled[...]`` line)."""
        from ..optimizer.explain import explain_analyze

        self._check_open()
        entry, __ = self.planner.prepare(
            query,
            strategy=strategy,
            sample_ratio=sample_ratio,
            seed=seed,
            params=params,
            **kwargs,
        )
        report = explain_analyze(
            self.catalog,
            entry.spec,
            entry.plan,
            sample=self.planner.sample(sample_ratio, seed),
            seed=seed,
            decisions=entry.decisions,
        )
        return report.render()

    def query_logical(
        self,
        logical: LogicalOperator,
        spec: QuerySpec,
        k: int | None = None,
        sample_ratio: float = 0.001,
        seed: int = 0,
        **kwargs: Any,
    ) -> QueryResult:
        """Optimize and execute a hand-built *logical* plan.

        Routes through the rule-based (transformation + implementation
        rules) optimizer, which supports the full algebra including the
        rank-aware set operations ∪, ∩, − — use this for queries the SQL
        dialect cannot express, e.g. the union of two ranked relations.
        ``spec`` supplies the scoring function, ``k`` and the statistics
        context (its table list should cover the plan's tables).
        """
        self._check_open()
        physical = self.planner.plan_logical(
            logical, spec, sample_ratio=sample_ratio, seed=seed, **kwargs
        )
        return self.execute(physical, spec.scoring, k=k if k is not None else spec.k)
