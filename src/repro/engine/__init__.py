"""Engine façade: the public entry point for using RankSQL as a database."""

from ..planner import PreparedQuery, Session
from .csv_io import dump_csv, load_csv
from .database import Database
from .persistence import (
    PersistenceError,
    load_database,
    save_database,
    write_checkpoint,
)
from .result import Cursor, QueryResult

__all__ = [
    "Cursor",
    "Database",
    "PersistenceError",
    "PreparedQuery",
    "QueryResult",
    "Session",
    "dump_csv",
    "load_csv",
    "load_database",
    "save_database",
    "write_checkpoint",
]
