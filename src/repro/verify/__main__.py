"""The isolation fuzz campaign as a command: ``python -m repro.verify``.

Runs the randomized multi-session transaction fuzz (CI's ``isolation``
job), prints the checker's verdict, and exits nonzero if the recorded
history shows *any* anomaly.  The seed is logged on every run; replay a
failure with ``REPRO_FUZZ_SEED=<seed>`` (or ``--seed``), which
regenerates the same per-transaction intents (thread interleaving stays
nondeterministic, so rerun a few times when chasing a race).

    python -m repro.verify                       # fresh seed, CI defaults
    REPRO_FUZZ_SEED=1234 python -m repro.verify  # replay a logged seed
    python -m repro.verify --transactions 1000 --sessions 8 --json out.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .fuzz import FuzzConfig, run_fuzz


def pick_seed(args_seed: "int | None") -> int:
    """--seed beats REPRO_FUZZ_SEED beats time-derived entropy."""
    if args_seed is not None:
        return args_seed
    env = os.environ.get("REPRO_FUZZ_SEED", "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            raise SystemExit(f"REPRO_FUZZ_SEED must be an integer, got {env!r}")
    return int(time.time_ns() % 2**31)


def main(argv: "list[str] | None" = None) -> int:
    defaults = FuzzConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="randomized black-box snapshot-isolation fuzz",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--sessions", type=int, default=defaults.sessions)
    parser.add_argument("--transactions", type=int, default=defaults.transactions)
    parser.add_argument("--keys", type=int, default=defaults.keys)
    parser.add_argument(
        "--read-fraction", type=float, default=defaults.read_fraction
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=60.0,
        help="wall-clock bound in seconds (workers stop issuing past it)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also dump the recorded history as JSON"
    )
    args = parser.parse_args(argv)

    config = FuzzConfig(
        sessions=args.sessions,
        transactions=args.transactions,
        keys=args.keys,
        seed=pick_seed(args.seed),
        read_fraction=args.read_fraction,
        time_budget=args.time_budget,
    )
    print(
        f"isolation fuzz: seed={config.seed} (replay with "
        f"REPRO_FUZZ_SEED={config.seed})",
        flush=True,
    )
    started = time.monotonic()
    result = run_fuzz(config)
    elapsed = time.monotonic() - started

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.history.to_json(indent=2))
        print(f"history written to {args.json}")
    print(result.render())
    print(f"elapsed: {elapsed:.1f}s")
    if not result.certified:
        print(
            f"FAIL: anomalies found; replay with REPRO_FUZZ_SEED={config.seed}",
            file=sys.stderr,
        )
        return 1
    print(
        f"certified: {result.stats['committed']} committed transactions, "
        "zero anomalies"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
