"""The verification campaigns as a command: ``python -m repro.verify``.

Two modes share one entry point:

* **isolation** (default) — the randomized multi-session transaction
  fuzz (CI's ``isolation`` job): hammer a served database, record the
  history, run the black-box SI checker, exit nonzero on any anomaly.
* **durability** (``--crash``) — the crash-recovery fuzz campaign (CI's
  ``durability`` job): inject crashes at every named crashpoint plus a
  torn-tail WAL corpus, recover cold each time, and exit nonzero if any
  acknowledged commit is lost, any partial write survives, or the
  recovered database fails the SI checker.

The seed is logged on every run; replay a failure with
``REPRO_FUZZ_SEED=<seed>`` (or ``--seed``), which regenerates the same
per-transaction intents and crashpoint arming (thread interleaving stays
nondeterministic, so rerun a few times when chasing a race).

    python -m repro.verify                       # isolation fuzz, CI defaults
    python -m repro.verify --crash --crashes 200 # the durability gate
    REPRO_FUZZ_SEED=1234 python -m repro.verify  # replay a logged seed
    python -m repro.verify --transactions 1000 --sessions 8 --json out.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .crash import CrashFuzzConfig, run_crash_campaign
from .fuzz import FuzzConfig, run_fuzz


def pick_seed(args_seed: "int | None") -> int:
    """--seed beats REPRO_FUZZ_SEED beats time-derived entropy."""
    if args_seed is not None:
        return args_seed
    env = os.environ.get("REPRO_FUZZ_SEED", "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            raise SystemExit(f"REPRO_FUZZ_SEED must be an integer, got {env!r}")
    return int(time.time_ns() % 2**31)


def _crash_main(args) -> int:
    config = CrashFuzzConfig(
        crashes=args.crashes,
        torn_tails=args.torn_tails,
        sessions=args.sessions,
        keys=args.keys,
        seed=pick_seed(args.seed),
        time_budget=args.time_budget,
        work_dir=args.work_dir,
    )
    print(
        f"crash-recovery fuzz: seed={config.seed} (replay with "
        f"REPRO_FUZZ_SEED={config.seed})",
        flush=True,
    )
    started = time.monotonic()
    result = run_crash_campaign(config)
    elapsed = time.monotonic() - started
    print(result.render())
    print(f"elapsed: {elapsed:.1f}s")
    if not result.certified:
        print(
            f"FAIL: {len(result.failures)} recovery failure(s); replay with "
            f"REPRO_FUZZ_SEED={config.seed}",
            file=sys.stderr,
        )
        return 1
    print(
        f"certified: {result.stats['crashes_fired']} injected crashes across "
        f"{result.stats['sites_covered']} sites + "
        f"{result.stats['torn_tails']} torn tails, every recovery intact"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    defaults = FuzzConfig()
    crash_defaults = CrashFuzzConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="randomized black-box isolation and durability fuzz",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--sessions", type=int, default=defaults.sessions)
    parser.add_argument("--transactions", type=int, default=defaults.transactions)
    parser.add_argument("--keys", type=int, default=defaults.keys)
    parser.add_argument(
        "--read-fraction", type=float, default=defaults.read_fraction
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=60.0,
        help="wall-clock bound in seconds (workers stop issuing past it)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also dump the recorded history as JSON"
    )
    parser.add_argument(
        "--crash",
        action="store_true",
        help="run the crash-recovery durability campaign instead of the "
        "isolation fuzz",
    )
    parser.add_argument(
        "--crashes",
        type=int,
        default=crash_defaults.crashes,
        help="crash-injection trials (round-robin over every crashpoint)",
    )
    parser.add_argument(
        "--torn-tails",
        type=int,
        default=crash_defaults.torn_tails,
        help="torn-tail WAL corpus trials",
    )
    parser.add_argument(
        "--work-dir",
        default=None,
        help="parent directory for crash-trial state (default: system temp)",
    )
    args = parser.parse_args(argv)

    if args.crash:
        return _crash_main(args)

    config = FuzzConfig(
        sessions=args.sessions,
        transactions=args.transactions,
        keys=args.keys,
        seed=pick_seed(args.seed),
        read_fraction=args.read_fraction,
        time_budget=args.time_budget,
    )
    print(
        f"isolation fuzz: seed={config.seed} (replay with "
        f"REPRO_FUZZ_SEED={config.seed})",
        flush=True,
    )
    started = time.monotonic()
    result = run_fuzz(config)
    elapsed = time.monotonic() - started

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.history.to_json(indent=2))
        print(f"history written to {args.json}")
    print(result.render())
    print(f"elapsed: {elapsed:.1f}s")
    if not result.certified:
        print(
            f"FAIL: anomalies found; replay with REPRO_FUZZ_SEED={config.seed}",
            file=sys.stderr,
        )
        return 1
    print(
        f"certified: {result.stats['committed']} committed transactions, "
        "zero anomalies"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
