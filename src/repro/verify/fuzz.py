"""The randomized multi-session isolation fuzz driver.

:func:`run_fuzz` hammers a served database with concurrent read/write
transactions over a small register table (``kv(key, val)``), harvests the
server's recorded history, interprets it into key-value ops
(:func:`~repro.verify.history.interpret_kv`) and runs the black-box SI
checker over it.  The workload is deliberately shaped so the checker's
verdict is sharp:

* **small key space** — contention is the point; write-write conflicts
  and overlapping snapshots happen constantly;
* **unique values** — every write stores the writing transaction's id,
  so reads-from is unambiguous;
* **each transaction is all-reads or all-read-modify-writes** — an update
  transaction writes *every* key it reads, so two concurrent updaters
  with crossing reads always have intersecting write sets, which
  first-committer-wins resolves.  That makes the workload serializable by
  construction, so a clean run certifies with **zero** anomalies — the
  checker's structural write-skew detection (which must over-approximate
  from a history) has nothing to flag, and any anomaly at all is a bug.

A serialization conflict (first-committer-wins loss) aborts the
transaction; the driver retries it with the same intent through the
client's own ``run_transaction`` helper (jittered-backoff retry, up to
``max_retries`` attempts), which is also the client retry-path test the
acceptance criteria ask for.

Reproducibility: the seed fully determines each transaction's intent
(keys touched, read/write mix) though not the thread interleaving; a
failing run logs its seed, and ``REPRO_FUZZ_SEED`` replays the same
intent stream in CI.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from .checker import CheckReport, check_snapshot_isolation
from .history import History, interpret_kv

#: the register-read statement every fuzz transaction uses
READ_SQL = "SELECT * FROM kv WHERE kv.key = :k"


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzz run (defaults match the CI acceptance gate)."""

    sessions: int = 4
    transactions: int = 240
    keys: int = 8
    seed: int = 0
    #: probability a transaction is read-only (the rest read-modify-write
    #: every key they touch — see the module docstring for why per-txn)
    read_fraction: float = 0.5
    #: keys touched per transaction, drawn uniformly from [1, max_ops]
    max_ops: int = 4
    #: per-transaction retry budget after serialization aborts
    max_retries: int = 20
    #: wall-clock bound; workers stop issuing new transactions past it
    time_budget: "float | None" = None


@dataclass
class FuzzResult:
    """A fuzz run's history, checker verdict and workload counters."""

    config: FuzzConfig
    history: History
    report: CheckReport
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def certified(self) -> bool:
        """Zero anomalies — SI *and* (for this workload) serializable."""
        return self.report.ok

    def render(self) -> str:
        lines = [
            f"fuzz seed={self.config.seed} sessions={self.config.sessions} "
            f"keys={self.config.keys}: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items())),
            self.report.render(),
        ]
        return "\n".join(lines)


def _build_database(config: FuzzConfig):
    from ..engine.database import Database
    from ..storage.schema import DataType

    db = Database()
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    db.insert("kv", [(key, 0) for key in range(config.keys)])
    db.create_column_index("kv", "key")
    db.analyze()
    return db


def _transaction_intent(config: FuzzConfig, serial: int) -> list[tuple[str, int]]:
    """The (deterministic) op list for the ``serial``-th transaction."""
    rng = random.Random((config.seed * 1_000_003) ^ serial)
    kind = "r" if rng.random() < config.read_fraction else "rmw"
    return [
        (kind, rng.randrange(config.keys))
        for __ in range(rng.randint(1, config.max_ops))
    ]


def run_fuzz(config: FuzzConfig | None = None, **overrides: Any) -> FuzzResult:
    """Run one fuzz campaign and return the checked result.

    Builds a fresh register database, serves it with history recording on,
    runs ``config.transactions`` transactions across ``config.sessions``
    concurrent in-process sessions, then checks the recorded history.
    """
    from ..storage.transaction import SerializationError

    if config is None:
        config = FuzzConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a FuzzConfig or keyword overrides, not both")

    db = _build_database(config)
    initial = {key: 0 for key in range(config.keys)}
    counters = {
        "attempted": 0,
        "committed": 0,
        "conflicts": 0,
        "retries_exhausted": 0,
        "reads": 0,
        "rmw": 0,
    }
    counters_lock = threading.Lock()
    serial_lock = threading.Lock()
    serial_box = [0]
    deadline = (
        time.monotonic() + config.time_budget
        if config.time_budget is not None
        else None
    )
    errors: list[BaseException] = []

    def next_serial() -> "int | None":
        with serial_lock:
            if serial_box[0] >= config.transactions:
                return None
            if deadline is not None and time.monotonic() > deadline:
                return None
            serial = serial_box[0]
            serial_box[0] += 1
            return serial

    def run_one(client, serial: int) -> None:
        intent = _transaction_intent(config, serial)
        attempts = [0]

        def body(c) -> None:
            attempts[0] += 1
            txn_id = c.session.transaction.txn_id
            for kind, key in intent:
                c.execute(READ_SQL, params={"k": key})
                if kind == "rmw":
                    c.delete("kv", column="key", equals=key)
                    c.insert("kv", [(key, txn_id)])

        try:
            # The client's own retry helper: same intent, fresh
            # transaction per attempt, jittered exponential backoff.
            client.run_transaction(
                body, retries=config.max_retries, backoff=0.001
            )
        except SerializationError:
            with counters_lock:
                counters["conflicts"] += attempts[0]
                counters["retries_exhausted"] += 1
            return
        with counters_lock:
            counters["conflicts"] += attempts[0] - 1
            counters["committed"] += 1
            for kind, __ in intent:
                counters["reads" if kind == "r" else "rmw"] += 1

    def worker() -> None:
        client = server.session()
        try:
            while True:
                serial = next_serial()
                if serial is None:
                    return
                with counters_lock:
                    counters["attempted"] += 1
                run_one(client, serial)
        except BaseException as error:  # surfaced after join
            errors.append(error)
        finally:
            client.close()

    with db.serve(workers=config.sessions, record_history=True) as server:
        threads = [
            threading.Thread(target=worker, name=f"fuzz-{i}", daemon=True)
            for i in range(config.sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        recorded = server.history(initial=initial)

    history = interpret_kv(recorded)
    report = check_snapshot_isolation(history)
    db.close()
    return FuzzResult(config=config, history=history, report=report, stats=dict(counters))
