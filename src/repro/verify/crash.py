"""The randomized crash-recovery fuzz campaign.

:func:`run_crash_campaign` certifies the durability subsystem the same
way :mod:`repro.verify.fuzz` certifies isolation — black-box, from the
outside.  Each *crash trial*:

1. builds a WAL-durable register database (``kv(key, val)``) in a fresh
   directory, serves it, and hammers it with concurrent read-modify-write
   transactions while a background thread checkpoints continuously;
2. arms the :class:`~repro.storage.faults.FaultInjector` at one named
   crashpoint (the campaign sweeps all of
   :data:`~repro.storage.faults.CRASHPOINT_NAMES` round-robin, torn-write
   sites included) so the "disk" freezes mid-workload exactly as a
   process death would;
3. abandons the wreck and recovers the directory with
   :func:`~repro.engine.persistence.load_database`, then checks:

   * **no lost acks** — every commit acknowledged to a client is in the
     recovered state;
   * **no partial writes** — the recovered state equals the acked
     commits applied in commit order, plus *at most one* uncertain
     commit (a ``commit()`` that raised mid-crash: its record may or may
     not have become durable before the crash — both outcomes are legal,
     a half-applied one is not);
   * **isolation survives recovery** — the pre-crash recorded history
     and a fresh post-recovery workload on the recovered database both
     pass :func:`~repro.verify.checker.check_snapshot_isolation`.

The campaign also runs a *torn-tail corpus*: sequential commits, then
the WAL's tail is truncated at a random byte offset (or a tail byte is
flipped), and recovery must land on exactly a commit-order prefix —
never garbage, never a partially applied transaction.

Reproducibility: the seed determines each trial's crashpoint arming,
intents and tail mutation (thread interleaving stays nondeterministic);
``REPRO_FUZZ_SEED`` replays a logged campaign in CI.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..storage.faults import CRASHPOINT_NAMES, FaultInjector, InjectedCrash
from ..storage.transaction import SerializationError
from .checker import check_snapshot_isolation
from .fuzz import READ_SQL
from .history import interpret_kv

#: crashpoints on the per-commit WAL path — reached constantly, so a
#: trial can arm a deeper hit count and still fire quickly
_WAL_SITES = frozenset(
    s for s in CRASHPOINT_NAMES if s.startswith("wal.append") or s.startswith("wal.fsync")
)


@dataclass(frozen=True)
class CrashFuzzConfig:
    """Knobs for one crash-recovery campaign (defaults suit a quick local
    run; CI raises ``crashes`` to meet its coverage gate)."""

    #: crash-injection trials (the crashpoint sweep is round-robin, so
    #: ``crashes >= len(CRASHPOINT_NAMES)`` covers every named site)
    crashes: int = 12
    #: torn-tail corpus trials (truncate / corrupt the WAL tail, recover)
    torn_tails: int = 6
    sessions: int = 3
    keys: int = 8
    seed: int = 0
    #: keys touched per transaction, drawn uniformly from [1, max_ops]
    max_ops: int = 3
    #: per-trial cap on issued transactions (a trial usually crashes long
    #: before; hitting the cap makes it a clean-abandon durability check)
    transactions: int = 400
    #: seconds between background checkpoint attempts during the workload
    checkpoint_interval: float = 0.005
    #: WAL fsync discipline under test
    fsync: str = "commit"
    #: post-recovery isolation workload size (transactions)
    post_transactions: int = 24
    #: wall-clock bound for the whole campaign; remaining trials are
    #: skipped (and counted) once it is exceeded
    time_budget: "float | None" = None
    #: parent directory for trial state (None = the system temp dir)
    work_dir: "str | None" = None


@dataclass
class CrashTrial:
    """One crash-inject/recover cycle's outcome."""

    trial: int
    site: str
    hits: int
    crashed: bool
    crash_site: "str | None"
    acked: int
    uncertain: int
    replayed: int
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CrashFuzzResult:
    """A campaign's trial outcomes and aggregate verdict."""

    config: CrashFuzzConfig
    trials: list[CrashTrial] = field(default_factory=list)
    torn_failures: list[str] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def failures(self) -> list[str]:
        out = [f for t in self.trials for f in t.failures]
        out.extend(self.torn_failures)
        return out

    @property
    def certified(self) -> bool:
        """Every trial recovered with nothing lost, nothing partial, and
        snapshot isolation intact before and after recovery."""
        return not self.failures

    def render(self) -> str:
        fired = [t for t in self.trials if t.crashed]
        sites = sorted({t.crash_site for t in fired if t.crash_site})
        lines = [
            f"crash fuzz seed={self.config.seed}: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items())),
            f"  crashed at {len(sites)} distinct sites: {', '.join(sites) or '-'}",
        ]
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        if self.certified:
            lines.append(
                f"  every recovery intact: {self.stats.get('acked_total', 0)} acked "
                "commits durable, zero partial writes, SI certified pre and post"
            )
        return "\n".join(lines)


def _intent(config: CrashFuzzConfig, trial: int, serial: int) -> list[tuple[str, int]]:
    """The deterministic op list for one workload transaction: mostly
    read-modify-writes (durability needs writers), each write storing the
    writing transaction's unique id."""
    rng = random.Random((config.seed * 2_097_593) ^ (trial * 8191) ^ serial)
    kind = "r" if rng.random() < 0.25 else "rmw"
    return [
        (kind, rng.randrange(config.keys))
        for __ in range(rng.randint(1, config.max_ops))
    ]


def _build_durable_database(directory: str, config: CrashFuzzConfig, injector):
    """A WAL-durable register database, checkpointed so the workload
    starts from a clean segment boundary.  The injector is attached but
    must still be unarmed here — setup IO is not under test."""
    from ..engine.database import Database
    from ..storage.schema import DataType

    db = Database(
        persist_dir=directory,
        durability="wal",
        fsync=config.fsync,
        fault_injector=injector,
    )
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    db.insert("kv", [(key, 0) for key in range(config.keys)])
    db.create_column_index("kv", "key")
    db.analyze()
    db.checkpoint()
    return db


def _abandon(db) -> None:
    """Walk away from a crashed database exactly like a dead process: no
    flush, no checkpoint — just release the WAL file handle."""
    try:
        if db.wal is not None:
            db.wal.close()
    except Exception:
        pass


def _read_state(db) -> dict[int, int]:
    """The register table's contents straight off the storage layer."""
    table = db.catalog.table("kv")
    return {row.values[0]: row.values[1] for row in table.rows()}


def _arm_plan(site: str, rng: random.Random) -> int:
    """How many arrivals at ``site`` before the crash fires.  WAL-path
    sites are hit on every commit, so deeper counts still fire fast;
    checkpoint-path sites are hit once per checkpoint pass."""
    return rng.randint(1, 4) if site in _WAL_SITES else rng.randint(1, 2)


def _run_crash_trial(config: CrashFuzzConfig, trial: int) -> CrashTrial:
    from ..engine.persistence import load_database

    rng = random.Random((config.seed * 2_097_593) ^ trial)
    site = CRASHPOINT_NAMES[trial % len(CRASHPOINT_NAMES)]
    hits = _arm_plan(site, rng)
    directory = tempfile.mkdtemp(prefix=f"crashfuzz-{trial}-", dir=config.work_dir)
    outcome = CrashTrial(
        trial=trial, site=site, hits=hits,
        crashed=False, crash_site=None, acked=0, uncertain=0, replayed=0,
    )
    try:
        injector = FaultInjector(seed=rng.randrange(2**31))
        db = _build_durable_database(directory, config, injector)
        initial = {key: 0 for key in range(config.keys)}
        injector.arm(site, hits=hits)

        acked: list[dict] = []
        uncertain: list[dict] = []
        lock = threading.Lock()
        stop = threading.Event()
        serial_box = [0]
        errors: list[BaseException] = []

        def next_serial() -> "int | None":
            with lock:
                if serial_box[0] >= config.transactions:
                    return None
                serial_box[0] += 1
                return serial_box[0] - 1

        def checkpointer() -> None:
            while not stop.wait(config.checkpoint_interval):
                try:
                    db.checkpoint()
                except InjectedCrash:
                    stop.set()
                    return
                except BaseException as error:  # a real bug, not the injector
                    errors.append(error)
                    stop.set()
                    return

        def worker() -> None:
            client = server.session()
            try:
                while not stop.is_set():
                    serial = next_serial()
                    if serial is None:
                        return
                    intent = _intent(config, trial, serial)
                    txn = client.begin()
                    writes: dict[int, int] = {}
                    committing = False
                    try:
                        for kind, key in intent:
                            client.execute(READ_SQL, params={"k": key})
                            if kind == "rmw":
                                client.delete("kv", column="key", equals=key)
                                client.insert("kv", [(key, txn.txn_id)])
                                writes[key] = txn.txn_id
                        committing = True
                        seq = client.commit()
                    except SerializationError:
                        continue  # first-committer-wins loss; move on
                    except InjectedCrash:
                        stop.set()
                        if committing:
                            # The ack never arrived: the commit record may
                            # or may not be durable.  Both are legal.
                            with lock:
                                uncertain.append(
                                    {"txn": txn.txn_id, "writes": dict(writes)}
                                )
                        else:
                            try:
                                client.rollback()
                            except Exception:
                                pass
                        return
                    except RuntimeError:
                        return  # server stopping/draining underneath us
                    else:
                        with lock:
                            acked.append(
                                {"txn": txn.txn_id, "seq": seq, "writes": writes}
                            )
            except BaseException as error:
                errors.append(error)
                stop.set()
            finally:
                try:
                    client.close()
                except Exception:
                    pass

        with db.serve(workers=config.sessions, record_history=True) as server:
            threads = [
                threading.Thread(target=worker, name=f"crash-{trial}-{i}", daemon=True)
                for i in range(config.sessions)
            ]
            ckpt = threading.Thread(
                target=checkpointer, name=f"crash-{trial}-ckpt", daemon=True
            )
            for thread in threads:
                thread.start()
            ckpt.start()
            for thread in threads:
                thread.join()
            stop.set()
            ckpt.join()
            recorded = server.history(initial=initial)
        if errors:
            raise errors[0]
        _abandon(db)

        outcome.crashed = injector.crashed
        outcome.crash_site = injector.crash_site
        outcome.acked = len(acked)
        outcome.uncertain = len(uncertain)

        # The pre-crash history must already certify (same engine, same
        # checker as the isolation fuzz).
        pre_report = check_snapshot_isolation(interpret_kv(recorded))
        if not pre_report.ok:
            outcome.failures.append(
                f"trial {trial} ({site}): pre-crash history failed SI: "
                + "; ".join(a.description for a in pre_report.anomalies[:3])
            )

        # Recover the directory cold, exactly like a restarted process.
        recovered = load_database(directory)
        outcome.replayed = (recovered.recovery_stats or {}).get("replayed", 0)
        durable = _read_state(recovered)

        # No lost acks, no partial writes: the durable state must be the
        # acked commits applied in commit order — optionally plus exactly
        # one uncertain commit, applied whole, on top.
        expected = dict(initial)
        for record in sorted(acked, key=lambda r: r["seq"]):
            expected.update(record["writes"])
        legal = [expected] + [
            {**expected, **u["writes"]} for u in uncertain
        ]
        if durable not in legal:
            lost = {
                k: v for k, v in expected.items() if durable.get(k) != v
            }
            outcome.failures.append(
                f"trial {trial} ({site}, hits={hits}, crashed at "
                f"{injector.crash_site!r}): recovered state is not the acked "
                f"commit sequence (+/- one uncertain commit); "
                f"diverging keys vs acked: {sorted(lost.items())[:6]}"
            )

        # The recovered database must still serve isolated transactions.
        post_report = _post_recovery_workload(config, trial, recovered, durable)
        if post_report is not None and not post_report.ok:
            outcome.failures.append(
                f"trial {trial} ({site}): post-recovery history failed SI: "
                + "; ".join(a.description for a in post_report.anomalies[:3])
            )
        recovered.close()
    except InjectedCrash as crash:
        outcome.failures.append(
            f"trial {trial} ({site}): InjectedCrash at {crash.site!r} escaped "
            "the workload — a durability path is missing its guard"
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return outcome


def _post_recovery_workload(config: CrashFuzzConfig, trial: int, db, durable):
    """A short concurrent workload on the recovered database, recorded
    and checked for SI — recovery must hand back a database that still
    isolates, not just one with the right bytes."""
    if config.post_transactions <= 0:
        return None
    lock = threading.Lock()
    serial_box = [0]
    errors: list[BaseException] = []

    def worker() -> None:
        client = server.session()
        try:
            while True:
                with lock:
                    if serial_box[0] >= config.post_transactions:
                        return
                    serial_box[0] += 1
                    serial = serial_box[0] - 1
                intent = _intent(config, trial + 100_003, serial)

                def body(c) -> None:
                    txn_id = c.session.transaction.txn_id
                    for kind, key in intent:
                        c.execute(READ_SQL, params={"k": key})
                        if kind == "rmw":
                            c.delete("kv", column="key", equals=key)
                            c.insert("kv", [(key, txn_id)])

                try:
                    client.run_transaction(body, retries=8, backoff=0.001)
                except SerializationError:
                    pass  # retries exhausted under contention; fine here
        except BaseException as error:
            errors.append(error)
        finally:
            client.close()

    with db.serve(workers=config.sessions, record_history=True) as server:
        threads = [
            threading.Thread(target=worker, name=f"post-{trial}-{i}", daemon=True)
            for i in range(config.sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        recorded = server.history(initial=durable)
    if errors:
        raise errors[0]
    return check_snapshot_isolation(interpret_kv(recorded))


def _run_torn_tail_trial(config: CrashFuzzConfig, trial: int) -> "str | None":
    """Commit sequentially, mutilate the WAL tail, recover: the result
    must be exactly a commit-order prefix.  Returns a failure description
    or None."""
    from ..engine.persistence import load_database
    from ..storage import wal as wal_mod

    rng = random.Random((config.seed * 7_368_787) ^ trial)
    directory = tempfile.mkdtemp(prefix=f"torntail-{trial}-", dir=config.work_dir)
    try:
        db = _build_durable_database(directory, config, None)
        # Sequential committed transactions; prefix_states[i] is the legal
        # recovered state if exactly the first i commits survive the tail.
        state = {key: 0 for key in range(config.keys)}
        prefix_states = [dict(state)]
        for __ in range(rng.randint(3, 10)):
            table = db.catalog.table("kv")
            with db.begin() as txn:
                for key in sorted({rng.randrange(config.keys) for __ in range(2)}):
                    txn.delete_where(table, column="key", equals=key)
                    txn.insert(table, [(key, txn.txn_id)])
                    state[key] = txn.txn_id
            prefix_states.append(dict(state))
        _abandon(db)

        # Mutilate the tail of the one live segment (setup checkpointed,
        # so every commit above lives in the current epoch's file).
        segments = wal_mod.list_segments(Path(directory))
        __, tail = segments[-1]
        size = tail.stat().st_size
        if rng.random() < 0.5:
            with open(tail, "r+b") as handle:
                handle.truncate(rng.randrange(0, size))
            mutation = "truncate"
        else:
            offset = rng.randrange(0, size)
            with open(tail, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes([byte[0] ^ 0xFF]))
            mutation = f"byteflip@{offset}"

        recovered = load_database(directory)
        durable = _read_state(recovered)
        recovered.close()
        if durable not in prefix_states:
            return (
                f"torn-tail trial {trial} ({mutation}, {size}B segment): "
                f"recovered state is not a commit-order prefix"
            )
        return None
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_crash_campaign(
    config: "CrashFuzzConfig | None" = None, **overrides: Any
) -> CrashFuzzResult:
    """Run one crash-recovery campaign and return the verdict.

    Sweeps every named crashpoint round-robin across ``config.crashes``
    injected-crash trials, then runs the torn-tail corpus.  Fully seeded;
    stops early (counting skips) past ``config.time_budget``.
    """
    if config is None:
        config = CrashFuzzConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a CrashFuzzConfig or keyword overrides, not both")

    deadline = (
        time.monotonic() + config.time_budget
        if config.time_budget is not None
        else None
    )
    result = CrashFuzzResult(config=config)
    skipped = 0
    for trial in range(config.crashes):
        if deadline is not None and time.monotonic() > deadline:
            skipped += 1
            continue
        result.trials.append(_run_crash_trial(config, trial))
    torn_run = 0
    for trial in range(config.torn_tails):
        if deadline is not None and time.monotonic() > deadline:
            skipped += 1
            continue
        torn_run += 1
        failure = _run_torn_tail_trial(config, trial)
        if failure is not None:
            result.torn_failures.append(failure)
    fired = [t for t in result.trials if t.crashed]
    result.stats = {
        "trials": len(result.trials),
        "crashes_fired": len(fired),
        "sites_covered": len({t.crash_site for t in fired if t.crash_site}),
        "acked_total": sum(t.acked for t in result.trials),
        "uncertain_total": sum(t.uncertain for t in result.trials),
        "replayed_total": sum(t.replayed for t in result.trials),
        "torn_tails": torn_run,
        "skipped_over_budget": skipped,
    }
    return result
