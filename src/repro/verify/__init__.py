"""Black-box isolation verification.

This package turns snapshot isolation from a design claim into a
regression-testable property, following the recorded-history approach of
"Efficient Black-box Checking of Snapshot Isolation" (arXiv 2301.07313)
and HISTEX (arXiv 1903.00731): run a concurrent transactional workload,
record every transaction's reads, writes and begin/commit order, and
verify isolation *from the history alone* — the checker never looks
inside the engine.

* :mod:`repro.verify.history` — the machine-readable history model
  (:class:`Op`, :class:`TransactionRecord`, :class:`History`, JSON
  round-trip) plus :func:`interpret_kv`, which maps the statement-level
  events the serving layer records into key-value read/write ops.
* :mod:`repro.verify.checker` — :func:`check_snapshot_isolation`, the
  black-box checker detecting aborted reads, future reads, long forks,
  non-repeatable reads and lost updates (SI violations), and write skew
  (a serializability anomaly SI admits, reported as *beyond SI*).
* :mod:`repro.verify.fuzz` — the randomized multi-session fuzz driver
  that hammers a served database with concurrent read/write transactions
  and feeds the recorded history to the checker (the CI isolation job).
* :mod:`repro.verify.crash` — the crash-recovery fuzz campaign: injected
  crashes at every named durability crashpoint plus a torn-tail WAL
  corpus, each followed by cold recovery and black-box verification that
  no acknowledged commit is lost, no partial write survives, and the
  recovered database still certifies under the SI checker (the CI
  durability job).
"""

from .checker import Anomaly, CheckReport, check_snapshot_isolation
from .history import History, Op, TransactionRecord, interpret_kv
from .fuzz import FuzzConfig, FuzzResult, run_fuzz
from .crash import CrashFuzzConfig, CrashFuzzResult, CrashTrial, run_crash_campaign

__all__ = [
    "Anomaly",
    "CheckReport",
    "check_snapshot_isolation",
    "History",
    "Op",
    "TransactionRecord",
    "interpret_kv",
    "FuzzConfig",
    "FuzzResult",
    "run_fuzz",
    "CrashFuzzConfig",
    "CrashFuzzResult",
    "CrashTrial",
    "run_crash_campaign",
]
