"""The transaction-history model for black-box isolation checking.

A *history* is everything an outside observer can know about a
transactional run: one :class:`TransactionRecord` per transaction carrying
its begin/end order stamps, its final status, and what it read and wrote.
The checker (:mod:`repro.verify.checker`) consumes histories in terms of
abstract key-value *operations* (:class:`Op`): ``r(k, v)`` — the
transaction read key ``k`` and observed value ``v`` (``None`` = absent) —
and ``w(k, v)`` — it wrote value ``v`` to key ``k`` (``None`` = delete).

Histories reach that form two ways:

* **hand-crafted** — the known-anomaly corpus builds records with explicit
  ``ops`` and order stamps (the checker is itself under test);
* **recorded** — the engine's transactions log statement-level *events*
  (queries with their parameters and result rows, buffered inserts and
  deletes); :func:`interpret_kv` maps those events onto key-value ops for
  the canonical register-table workload the fuzz driver runs.

Order stamps come from one logical clock: the transaction manager bumps a
single counter at every begin and every commit, so ``begin_seq`` and
``end_seq`` values interleave into one total order.  A transaction's
snapshot should contain exactly the writes of transactions whose
``end_seq`` precedes its ``begin_seq`` — that is the property the checker
verifies.

Values are assumed *distinguishable*: a workload that writes the same
value to the same key from two different transactions makes reads-from
ambiguous and classification approximate.  The fuzz driver writes each
key's value as the writing transaction's unique id, the standard
black-box-checking discipline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class Op:
    """One key-value operation: ``kind`` is ``"r"`` or ``"w"``."""

    kind: str
    key: Any
    value: Any

    def __post_init__(self):
        if self.kind not in ("r", "w"):
            raise ValueError(f"op kind must be 'r' or 'w', got {self.kind!r}")

    def __repr__(self) -> str:
        return f"{self.kind}({self.key!r}, {self.value!r})"


#: terminal transaction statuses a history may contain
STATUSES = ("committed", "aborted", "rolled-back", "active")


@dataclass
class TransactionRecord:
    """One transaction as the history sees it.

    ``begin_seq``/``end_seq`` are logical-clock stamps (see the module
    docstring); ``end_seq`` is ``None`` only for transactions still active
    when the history was harvested.  ``status`` is ``"committed"``,
    ``"aborted"`` (serialization conflict — first-committer-wins loss),
    ``"rolled-back"`` (client rollback) or ``"active"``.  ``events`` are
    the raw statement-level records the serving layer logged; ``ops`` are
    the interpreted key-value operations the checker consumes.
    """

    txn_id: int
    begin_seq: int
    end_seq: "int | None" = None
    status: str = "active"
    session: "str | None" = None
    events: list[dict] = field(default_factory=list)
    ops: list[Op] = field(default_factory=list)

    def __post_init__(self):
        if self.status not in STATUSES:
            raise ValueError(
                f"unknown status {self.status!r}; expected one of {STATUSES}"
            )

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    def reads(self) -> list[Op]:
        return [op for op in self.ops if op.kind == "r"]

    def writes(self) -> list[Op]:
        return [op for op in self.ops if op.kind == "w"]

    def final_writes(self) -> dict[Any, Any]:
        """The last written value per key — what this transaction installs
        at commit (intermediate overwrites inside the transaction are not
        externally visible)."""
        out: dict[Any, Any] = {}
        for op in self.ops:
            if op.kind == "w":
                out[op.key] = op.value
        return out

    def to_dict(self) -> dict:
        return {
            "txn_id": self.txn_id,
            "begin_seq": self.begin_seq,
            "end_seq": self.end_seq,
            "status": self.status,
            "session": self.session,
            "events": self.events,
            "ops": [[op.kind, op.key, op.value] for op in self.ops],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TransactionRecord":
        return cls(
            txn_id=payload["txn_id"],
            begin_seq=payload["begin_seq"],
            end_seq=payload.get("end_seq"),
            status=payload.get("status", "active"),
            session=payload.get("session"),
            events=list(payload.get("events", ())),
            ops=[Op(kind, key, value) for kind, key, value in payload.get("ops", ())],
        )


class History:
    """An ordered collection of transaction records plus the initial state.

    ``initial`` maps keys to their values before any recorded transaction
    ran (the preloaded register table); keys absent from it read as
    ``None`` at the start of the history.
    """

    def __init__(
        self,
        records: Iterable[TransactionRecord] = (),
        initial: "dict | None" = None,
    ):
        self.records: list[TransactionRecord] = list(records)
        self.initial: dict = dict(initial or {})

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TransactionRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        by_status: dict[str, int] = {}
        for record in self.records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(by_status.items()))
        return f"History({len(self.records)} txns: {parts})"

    def committed(self) -> list[TransactionRecord]:
        """Committed records in commit (``end_seq``) order."""
        out = [r for r in self.records if r.committed]
        out.sort(key=lambda r: r.end_seq)
        return out

    def record(self, txn_id: int) -> TransactionRecord:
        for candidate in self.records:
            if candidate.txn_id == txn_id:
                return candidate
        raise KeyError(f"no transaction {txn_id} in history")

    # -- serialization (the machine-readable format) -----------------------
    def to_json(self, indent: "int | None" = None) -> str:
        payload = {
            "initial": [[k, v] for k, v in self.initial.items()],
            "transactions": [r.to_dict() for r in self.records],
        }
        return json.dumps(payload, indent=indent, default=str)

    @classmethod
    def from_json(cls, text: str) -> "History":
        payload = json.loads(text)
        return cls(
            records=[
                TransactionRecord.from_dict(r) for r in payload["transactions"]
            ],
            initial={k: v for k, v in payload.get("initial", ())},
        )


def interpret_kv(
    history: History,
    *,
    table: str = "kv",
    key_pos: int = 0,
    val_pos: int = 1,
    read_param: str = "k",
) -> History:
    """Interpret recorded statement-level events as key-value ops.

    The canonical register workload reads one key per statement
    (``SELECT * FROM kv WHERE kv.key = :k``) and writes a key as a
    buffered delete + insert.  Event mapping:

    * ``insert`` on ``table`` → ``w(row[key_pos], row[val_pos])`` per row;
    * ``delete`` on ``table`` with ``equals`` → ``w(equals, None)``
      (a tombstone; a following insert of the same key overwrites it —
      :meth:`TransactionRecord.final_writes` keeps the last);
    * ``query`` whose params bind ``read_param`` → ``r(params[read_param],
      rows[0][val_pos])``, or ``r(key, None)`` when no row came back.

    Events touching other tables pass through silently; an event on the
    register table the mapping cannot interpret (a predicate-style delete
    with no ``equals``, a query returning several rows) raises
    ``ValueError`` — an uninterpretable history must never be certified.

    Returns a new :class:`History` whose records carry the interpreted
    ``ops`` (the original records are not mutated).
    """
    out: list[TransactionRecord] = []
    for record in history.records:
        ops: list[Op] = []
        for event in record.events:
            kind = event.get("op")
            if kind == "insert":
                if event.get("table") != table:
                    continue
                for row in event.get("rows", ()):
                    ops.append(Op("w", row[key_pos], row[val_pos]))
            elif kind == "delete":
                if event.get("table") != table:
                    continue
                if "equals" not in event or event.get("column") is None:
                    raise ValueError(
                        f"uninterpretable delete event on {table!r} "
                        f"(txn {record.txn_id}): needs column/equals form"
                    )
                ops.append(Op("w", event["equals"], None))
            elif kind == "query":
                params = event.get("params") or {}
                if not isinstance(params, dict) or read_param not in params:
                    continue  # not a register read (e.g. a full scan)
                rows = event.get("rows", ())
                if len(rows) > 1:
                    raise ValueError(
                        f"register read returned {len(rows)} rows "
                        f"(txn {record.txn_id}); keys must be unique"
                    )
                value = rows[0][val_pos] if rows else None
                ops.append(Op("r", params[read_param], value))
        out.append(
            TransactionRecord(
                txn_id=record.txn_id,
                begin_seq=record.begin_seq,
                end_seq=record.end_seq,
                status=record.status,
                session=record.session,
                events=list(record.events),
                ops=ops,
            )
        )
    return History(out, initial=history.initial)
