"""The black-box snapshot-isolation checker.

:func:`check_snapshot_isolation` verifies a recorded
:class:`~repro.verify.history.History` against the SI contract using only
the history itself — order stamps, statuses and key-value ops — never the
engine's internals.  Under snapshot isolation every transaction ``T``
must:

1. **read from one consistent snapshot** — every read of key ``k`` (before
   ``T`` writes ``k`` itself) observes the value installed by the *latest*
   transaction that committed before ``T`` began (``end_seq <=
   T.begin_seq``), or the initial state;
2. **read its own writes** — after ``T`` buffers a write of ``k``, its
   reads of ``k`` observe that value;
3. **win or abort** — no two *concurrent* transactions (neither committed
   before the other began) may both commit writes to the same key
   (first-committer-wins).

Violations are reported as :class:`Anomaly` records, classified the way
the isolation literature names them:

* ``aborted-read`` — observed a value written only by an aborted (or
  rolled-back / still-active) transaction;
* ``future-read`` — observed a write committed *after* the reader's
  snapshot point (the read-side face of a non-repeatable read);
* ``long-fork`` — observed a *stale* version: a commit the snapshot should
  contain is missing, i.e. the reader sat on a forked/inconsistent
  snapshot (the anomaly parallel snapshot isolation admits and SI forbids);
* ``non-repeatable-read`` — two reads of one key inside one transaction,
  with no own write between them, observed different values;
* ``intermediate-read`` — observed a value a transaction overwrote before
  committing (never externally visible under any isolation level);
* ``lost-update`` — two concurrent transactions both committed writes to
  one key (first-committer-wins violated; the classic lost update);
* ``phantom-value`` — observed a value no recorded transaction ever wrote
  (corruption, or a gap in the recording);
* ``write-skew`` — two concurrent committed transactions with disjoint
  write sets where each read a key the other wrote.  SI *admits* this
  (it is a serializability anomaly, not an SI anomaly), so it is reported
  with ``beyond_si=True`` and does not fail :attr:`CheckReport.si_ok` —
  but a workload that should be serializable can assert on it.

Classification assumes the unique-value discipline documented in
:mod:`repro.verify.history`; with colliding values the checker still
detects that *something* is wrong, but may name it less precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .history import History, TransactionRecord

#: anomaly kinds that violate snapshot isolation itself
SI_VIOLATIONS = (
    "aborted-read",
    "future-read",
    "long-fork",
    "non-repeatable-read",
    "intermediate-read",
    "lost-update",
    "phantom-value",
)

#: anomaly kinds admitted by SI but reported (serializability violations)
BEYOND_SI = ("write-skew",)


@dataclass(frozen=True)
class Anomaly:
    """One isolation violation found in a history."""

    kind: str
    key: Any
    txns: tuple[int, ...]
    description: str
    #: True for anomalies SI admits (reported, but not SI violations)
    beyond_si: bool = False

    def __repr__(self) -> str:
        return f"Anomaly({self.kind}, key={self.key!r}, txns={self.txns})"


@dataclass
class CheckReport:
    """The checker's verdict over one history."""

    anomalies: list[Anomaly] = field(default_factory=list)
    transactions: int = 0
    committed: int = 0
    reads_checked: int = 0

    @property
    def si_violations(self) -> list[Anomaly]:
        return [a for a in self.anomalies if not a.beyond_si]

    @property
    def beyond_si(self) -> list[Anomaly]:
        return [a for a in self.anomalies if a.beyond_si]

    @property
    def si_ok(self) -> bool:
        """Whether the history satisfies snapshot isolation."""
        return not self.si_violations

    @property
    def ok(self) -> bool:
        """Whether the history is anomaly-free entirely (serializable-clean)."""
        return not self.anomalies

    def kinds(self) -> set[str]:
        return {a.kind for a in self.anomalies}

    def summary(self) -> dict[str, Any]:
        by_kind: dict[str, int] = {}
        for anomaly in self.anomalies:
            by_kind[anomaly.kind] = by_kind.get(anomaly.kind, 0) + 1
        return {
            "transactions": self.transactions,
            "committed": self.committed,
            "reads_checked": self.reads_checked,
            "anomalies": len(self.anomalies),
            "si_violations": len(self.si_violations),
            "si_ok": self.si_ok,
            "by_kind": by_kind,
        }

    def render(self) -> str:
        lines = [
            f"SI check: {self.committed}/{self.transactions} committed, "
            f"{self.reads_checked} reads checked -> "
            + ("OK" if self.si_ok else "SI VIOLATED")
        ]
        for anomaly in self.anomalies:
            tag = " (beyond SI)" if anomaly.beyond_si else ""
            lines.append(
                f"  [{anomaly.kind}]{tag} key={anomaly.key!r} "
                f"txns={list(anomaly.txns)}: {anomaly.description}"
            )
        return "\n".join(lines)


def _concurrent(a: TransactionRecord, b: TransactionRecord) -> bool:
    """Neither transaction committed before the other began."""
    return a.begin_seq < b.end_seq and b.begin_seq < a.end_seq


def check_snapshot_isolation(history: History) -> CheckReport:
    """Check a history against snapshot isolation; see the module docstring
    for the verdict semantics and anomaly classes."""
    report = CheckReport(transactions=len(history.records))
    committed = history.committed()
    report.committed = len(committed)

    # Per-key version chains from committed final writes, in commit order.
    versions: dict[Any, list[tuple[int, int, Any]]] = {}
    for txn in committed:
        for key, value in txn.final_writes().items():
            versions.setdefault(key, []).append((txn.end_seq, txn.txn_id, value))

    # (key, value) -> every write of it anywhere (classification evidence).
    writers: dict[tuple[Any, Any], list[tuple[TransactionRecord, bool]]] = {}
    for txn in history.records:
        finals = txn.final_writes()
        seen_final: set[Any] = set()
        for op in reversed(txn.ops):
            if op.kind != "w":
                continue
            is_final = op.key not in seen_final and finals.get(op.key) == op.value
            seen_final.add(op.key)
            writers.setdefault((op.key, op.value), []).append((txn, is_final))

    def snapshot_value(key: Any, begin_seq: int) -> Any:
        """The value T's snapshot must hold for ``key``."""
        value = history.initial.get(key)
        for end_seq, __, installed in versions.get(key, ()):
            if end_seq <= begin_seq:
                value = installed
            else:
                break
        return value

    anomalies: list[Anomaly] = []

    def classify_read(txn: TransactionRecord, key: Any, observed: Any, expected: Any):
        evidence = writers.get((key, observed), [])
        committed_writes = [(w, final) for w, final in evidence if w.committed]
        if committed_writes:
            writer, is_final = max(
                committed_writes, key=lambda pair: (pair[1], pair[0].end_seq)
            )
            if not is_final:
                anomalies.append(
                    Anomaly(
                        "intermediate-read",
                        key,
                        (txn.txn_id, writer.txn_id),
                        f"observed {observed!r}, an intermediate value txn "
                        f"{writer.txn_id} overwrote before committing",
                    )
                )
            elif writer.end_seq > txn.begin_seq:
                anomalies.append(
                    Anomaly(
                        "future-read",
                        key,
                        (txn.txn_id, writer.txn_id),
                        f"observed {observed!r} committed at seq "
                        f"{writer.end_seq}, after the snapshot point "
                        f"(begin seq {txn.begin_seq}); expected {expected!r}",
                    )
                )
            else:
                anomalies.append(
                    Anomaly(
                        "long-fork",
                        key,
                        (txn.txn_id, writer.txn_id),
                        f"observed stale value {observed!r} (committed seq "
                        f"{writer.end_seq}) instead of {expected!r}: the "
                        "snapshot missed a commit it must contain",
                    )
                )
            return
        if evidence:  # written, but never by a committed transaction
            writer = evidence[0][0]
            anomalies.append(
                Anomaly(
                    "aborted-read",
                    key,
                    (txn.txn_id, writer.txn_id),
                    f"observed {observed!r}, written only by txn "
                    f"{writer.txn_id} ({writer.status})",
                )
            )
            return
        if observed == history.initial.get(key):
            anomalies.append(
                Anomaly(
                    "long-fork",
                    key,
                    (txn.txn_id,),
                    f"observed the initial value {observed!r} instead of "
                    f"{expected!r}: the snapshot missed a commit it must "
                    "contain",
                )
            )
            return
        anomalies.append(
            Anomaly(
                "phantom-value",
                key,
                (txn.txn_id,),
                f"observed {observed!r}, which no recorded transaction wrote",
            )
        )

    # 1 + 2: snapshot reads, read-your-writes, repeatability.
    for txn in committed:
        own: dict[Any, Any] = {}
        #: last observed value per key since the last own write of it
        last_read: dict[Any, Any] = {}
        for op in txn.ops:
            if op.kind == "w":
                own[op.key] = op.value
                last_read.pop(op.key, None)
                continue
            report.reads_checked += 1
            if op.key in last_read and last_read[op.key] != op.value:
                anomalies.append(
                    Anomaly(
                        "non-repeatable-read",
                        op.key,
                        (txn.txn_id,),
                        f"read {last_read[op.key]!r} then {op.value!r} with "
                        "no own write in between",
                    )
                )
            expected = (
                own[op.key]
                if op.key in own
                else snapshot_value(op.key, txn.begin_seq)
            )
            if op.value != expected:
                classify_read(txn, op.key, op.value, expected)
            last_read[op.key] = op.value

    # 3: first-committer-wins — concurrent committed writers of one key.
    for key, chain in sorted(versions.items(), key=lambda kv: repr(kv[0])):
        if len(chain) < 2:
            continue
        txns = [history.record(txn_id) for __, txn_id, __ in chain]
        for i in range(len(txns)):
            for j in range(i + 1, len(txns)):
                if _concurrent(txns[i], txns[j]):
                    anomalies.append(
                        Anomaly(
                            "lost-update",
                            key,
                            (txns[i].txn_id, txns[j].txn_id),
                            "concurrent transactions both committed a write "
                            "to this key (first-committer-wins violated)",
                        )
                    )

    # Write skew (beyond SI): concurrent, disjoint write sets, crossing reads.
    read_keys = {
        txn.txn_id: {op.key for op in txn.reads()} for txn in committed
    }
    write_keys = {txn.txn_id: set(txn.final_writes()) for txn in committed}
    for i in range(len(committed)):
        for j in range(i + 1, len(committed)):
            a, b = committed[i], committed[j]
            wa, wb = write_keys[a.txn_id], write_keys[b.txn_id]
            if not wa or not wb or (wa & wb) or not _concurrent(a, b):
                continue
            crossing_ab = read_keys[a.txn_id] & wb
            crossing_ba = read_keys[b.txn_id] & wa
            if crossing_ab and crossing_ba:
                anomalies.append(
                    Anomaly(
                        "write-skew",
                        tuple(sorted(crossing_ab | crossing_ba, key=repr)),
                        (a.txn_id, b.txn_id),
                        "concurrent transactions read each other's written "
                        "keys and committed disjoint writes (admitted by SI, "
                        "not serializable)",
                        beyond_si=True,
                    )
                )

    anomalies.sort(key=lambda a: (a.beyond_si, a.kind, repr(a.key), a.txns))
    report.anomalies = anomalies
    return report
