"""Secondary indexes.

Three index flavours back the physical access paths of the engine:

* :class:`ColumnIndex` — a B+-tree-like ordered index on one column.
  Supports equality probes and ordered (ascending) scans; the latter is the
  "interesting order" access path for sort-merge joins.
* :class:`RankIndex` — an index on a *ranking predicate's* score, scanned in
  descending score order.  This is the paper's *rank-scan* access path
  (``idxScan_p``): tuples come out ordered by the predicate value without
  evaluating the predicate at query time.  PostgreSQL supports such
  function-based indexes, which the paper leverages.
* :class:`MultiKeyIndex` — a composite index on a Boolean column plus a
  ranking predicate, enabling *scan-based selection*: scanning in predicate
  order while filtering on the Boolean key (§4.2).

All indexes are kept sorted with :mod:`bisect` over immutable key tuples and
are maintained incrementally on insert via :meth:`Table.attach_index`.

**Rebind discipline (versioning contract).**  Index maintenance never
mutates the entry arrays in place: every write builds fresh ``_keys`` /
``_rows`` lists and *rebinds* the attributes.  A published
:class:`~repro.storage.table.TableVersion` can therefore pin an index's
exact state with an O(1) shallow copy (:meth:`Index.pinned`) — concurrent
readers scanning a pinned snapshot are immune to any later write, while
the live index object handed out at creation time keeps reflecting the
latest data.
"""

from __future__ import annotations

import bisect
import copy
from typing import Any, Callable, Iterator

from .row import Row
from .schema import Schema


class Index:
    """Base class for secondary indexes (ordered by an extracted key)."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        # Parallel arrays: sort keys and their rows, kept sorted by key.
        self._keys: list[Any] = []
        self._rows: list[Row] = []

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, entries={len(self)})"

    def key_for(self, row: Row) -> Any:
        """Extract the sort key for a row.  Subclasses must implement."""
        raise NotImplementedError

    def covers(self, key: str | None) -> bool:
        """Whether this index serves lookups/scans keyed by ``key``."""
        raise NotImplementedError

    def insert(self, row: Row) -> None:
        """Insert a row, maintaining key order (ties broken by row id).

        Rebinds fresh arrays instead of ``list.insert`` (same O(n) cost)
        so pinned snapshots of the previous state stay frozen.
        """
        key = (self.key_for(row), row.rid)
        pos = bisect.bisect_left(self._keys, key)
        self._keys = self._keys[:pos] + [key] + self._keys[pos:]
        self._rows = self._rows[:pos] + [row] + self._rows[pos:]

    def insert_many(self, rows: "list[Row] | tuple[Row, ...]") -> None:
        """Bulk-insert rows: sort the batch once, then merge it with the
        existing entries — ``O((n+m) log m)`` instead of ``m`` bisect
        inserts at ``O(n)`` list-shifting each (the table-load fast path)."""
        if not rows:
            return
        batch = sorted(((self.key_for(r), r.rid), r) for r in rows)
        if not self._keys:
            self._keys = [k for k, __ in batch]
            self._rows = [r for __, r in batch]
            return
        keys: list[Any] = []
        out_rows: list[Row] = []
        i = j = 0
        old_keys, old_rows = self._keys, self._rows
        while i < len(old_keys) and j < len(batch):
            if old_keys[i] <= batch[j][0]:
                keys.append(old_keys[i])
                out_rows.append(old_rows[i])
                i += 1
            else:
                keys.append(batch[j][0])
                out_rows.append(batch[j][1])
                j += 1
        keys.extend(old_keys[i:])
        out_rows.extend(old_rows[i:])
        for key, row in batch[j:]:
            keys.append(key)
            out_rows.append(row)
        self._keys = keys
        self._rows = out_rows

    def pinned(self) -> "Index":
        """An O(1) frozen snapshot of the current state.

        The shallow copy shares the entry arrays with the live index; the
        rebind discipline guarantees no later write ever mutates them, so
        the snapshot is immutable by construction.  Published table
        versions hold pinned snapshots, keeping concurrent readers
        isolated from writers.
        """
        return copy.copy(self)

    def remove_rids(self, rids: "set[tuple[tuple[str, int], ...]]") -> int:
        """Remove every row whose rid is in ``rids`` (rebind-style; key
        order is preserved).  Returns the number removed."""
        keys: list[Any] = []
        rows: list[Row] = []
        for key, row in zip(self._keys, self._rows):
            if row.rid not in rids:
                keys.append(key)
                rows.append(row)
        removed = len(self._rows) - len(rows)
        self._keys = keys
        self._rows = rows
        return removed

    def scan_ascending(self) -> Iterator[Row]:
        """All rows in ascending key order."""
        return iter(self._rows)

    def scan_descending(self) -> Iterator[Row]:
        """All rows in descending key order."""
        return iter(reversed(self._rows))


class ColumnIndex(Index):
    """Ordered index on a single column; supports equality probes."""

    def __init__(self, name: str, schema: Schema, column: str):
        super().__init__(name, schema)
        self.column = column
        self._position = schema.index_of(column)

    def key_for(self, row: Row) -> Any:
        return row[self._position]

    def covers(self, key: str | None) -> bool:
        if key is None:
            return False
        return key == self.column or self.schema.column(self.column).matches(key)

    def lookup(self, value: Any) -> Iterator[Row]:
        """All rows whose indexed column equals ``value``."""
        # Bind the arrays once: the rebind discipline means a concurrent
        # write replaces them wholesale, so a scan that captured both
        # stays on one consistent state instead of tearing mid-iteration.
        keys, rows = self._keys, self._rows
        lo = bisect.bisect_left(keys, (value,))
        for i in range(lo, len(keys)):
            if keys[i][0] != value:
                break
            yield rows[i]

    def range_scan(self, low: Any = None, high: Any = None) -> Iterator[Row]:
        """Rows with ``low <= key <= high`` (None = unbounded), ascending."""
        keys, rows = self._keys, self._rows
        start = 0 if low is None else bisect.bisect_left(keys, (low,))
        for i in range(start, len(keys)):
            if high is not None and keys[i][0] > high:
                break
            yield rows[i]


class RankIndex(Index):
    """Function-based index on a ranking predicate's score (rank-scan).

    ``score_fn`` maps a row's values to a score in ``[0, p_max]``.  Scores are
    computed once at index build/insert time — a rank-scan therefore does
    *not* charge predicate evaluations at query time, exactly like the
    paper's ``idxScan_p`` built on a PostgreSQL expression index.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        predicate_name: str,
        score_fn: Callable[[Row], float],
    ):
        super().__init__(name, schema)
        self.predicate_name = predicate_name
        self._score_fn = score_fn

    def key_for(self, row: Row) -> Any:
        # Negated so an ascending scan gives descending scores with ties
        # broken by ascending row id — matching Definition 1's tie-breaking.
        return -self._score_fn(row)

    def covers(self, key: str | None) -> bool:
        return key == self.predicate_name

    def scan_by_score(self) -> Iterator[tuple[float, Row]]:
        """Yield ``(score, row)`` pairs in descending score order
        (ties in ascending row-id order)."""
        keys, rows = self._keys, self._rows  # one consistent rebind state
        for i in range(len(rows)):
            yield -keys[i][0], rows[i]


class MultiKeyIndex(Index):
    """Composite index on (Boolean column, ranking predicate score).

    Enables scan-based selection (§4.2): rows satisfying the Boolean key are
    returned in descending score order, skipping non-qualifying rows without
    touching the heap.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        bool_column: str,
        predicate_name: str,
        score_fn: Callable[[Row], float],
    ):
        super().__init__(name, schema)
        self.bool_column = bool_column
        self.predicate_name = predicate_name
        self._bool_position = schema.index_of(bool_column)
        self._score_fn = score_fn

    def key_for(self, row: Row) -> Any:
        # Score negated for the same tie-ordering reason as RankIndex.
        return (bool(row[self._bool_position]), -self._score_fn(row))

    def covers(self, key: str | None) -> bool:
        return key == self.predicate_name or key == self.bool_column

    def scan_matching(self, bool_value: bool = True) -> Iterator[tuple[float, Row]]:
        """Yield ``(score, row)`` for rows whose Boolean key equals
        ``bool_value``, in descending score order (ties by ascending row id)."""
        keys, rows = self._keys, self._rows  # one consistent rebind state
        for i in range(len(rows)):
            flag, negated_score = keys[i][0]
            if flag == bool_value:
                yield -negated_score, rows[i]
