"""Typed schemas for the storage engine.

A :class:`Schema` is an ordered list of named, typed :class:`Column` objects.
Schemas are immutable; operations that change shape (projection,
concatenation for joins) return new schemas.  Columns are addressed either by
plain name (``"price"``) or by qualified name (``"hotel.price"``) — the
qualifier is the table name or an alias assigned at scan time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence


class DataType(enum.Enum):
    """Supported column data types."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    @classmethod
    def infer(cls, value: Any) -> "DataType":
        """Infer the data type of a Python value."""
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.TEXT
        raise TypeError(f"unsupported value type: {type(value).__name__}")

    def validate(self, value: Any) -> bool:
        """Return True if ``value`` is acceptable for this type (None = NULL ok)."""
        if value is None:
            return True
        if self is DataType.BOOL:
            return isinstance(value, bool)
        if self is DataType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.TEXT:
            return isinstance(value, str)
        return False


@dataclass(frozen=True)
class Column:
    """A named, typed column, optionally qualified by a table name/alias."""

    name: str
    dtype: DataType = DataType.FLOAT
    table: str | None = None

    @property
    def qualified_name(self) -> str:
        """The fully qualified ``table.name`` (or bare name if unqualified)."""
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name

    def with_table(self, table: str | None) -> "Column":
        """Return a copy of this column qualified with ``table``."""
        return Column(self.name, self.dtype, table)

    def matches(self, reference: str) -> bool:
        """Whether a (possibly qualified) column reference names this column."""
        if "." in reference:
            table, __, name = reference.partition(".")
            return self.name == name and self.table == table
        return self.name == reference


class SchemaError(Exception):
    """Raised on schema violations: unknown/ambiguous columns, arity mismatch."""


class Schema:
    """An immutable, ordered collection of columns.

    Provides positional lookup by (possibly qualified) column reference, which
    the expression compiler uses to turn names into tuple offsets.
    """

    __slots__ = ("_columns", "_by_qualified")

    def __init__(self, columns: Iterable[Column]):
        self._columns: tuple[Column, ...] = tuple(columns)
        self._by_qualified: dict[str, int] = {}
        for i, col in enumerate(self._columns):
            self._by_qualified.setdefault(col.qualified_name, i)

    @classmethod
    def of(cls, *specs: str | tuple[str, DataType], table: str | None = None) -> "Schema":
        """Build a schema from terse specs.

        Each spec is a column name (type defaults to FLOAT) or a
        ``(name, DataType)`` pair.

        >>> Schema.of("a", ("b", DataType.INT), table="r").column_names()
        ['a', 'b']
        """
        columns = []
        for spec in specs:
            if isinstance(spec, str):
                columns.append(Column(spec, DataType.FLOAT, table))
            else:
                name, dtype = spec
                columns.append(Column(name, dtype, table))
        return cls(columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(c.qualified_name for c in self._columns)
        return f"Schema({cols})"

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    def column_names(self) -> list[str]:
        """Unqualified column names in order."""
        return [c.name for c in self._columns]

    def qualified_names(self) -> list[str]:
        """Qualified column names in order."""
        return [c.qualified_name for c in self._columns]

    def index_of(self, reference: str) -> int:
        """Resolve a column reference to its tuple position.

        Raises :class:`SchemaError` for unknown or ambiguous references.
        """
        if reference in self._by_qualified:
            return self._by_qualified[reference]
        matches = [i for i, c in enumerate(self._columns) if c.matches(reference)]
        if not matches:
            raise SchemaError(f"unknown column: {reference!r} in {self!r}")
        if len(matches) > 1:
            raise SchemaError(f"ambiguous column: {reference!r} in {self!r}")
        return matches[0]

    def has_column(self, reference: str) -> bool:
        """Whether ``reference`` resolves to exactly one column."""
        try:
            self.index_of(reference)
        except SchemaError:
            return False
        return True

    def column(self, reference: str) -> Column:
        """Resolve a reference to its :class:`Column`."""
        return self._columns[self.index_of(reference)]

    def with_table(self, table: str | None) -> "Schema":
        """Return this schema with every column re-qualified to ``table``."""
        return Schema(c.with_table(table) for c in self._columns)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation (join/product) of two row layouts."""
        return Schema(self._columns + other._columns)

    def project(self, references: Sequence[str]) -> "Schema":
        """Schema restricted to the given column references, in given order."""
        return Schema(self._columns[self.index_of(r)] for r in references)

    def validate_row(self, values: Sequence[Any]) -> None:
        """Check arity and per-column types of a candidate row."""
        if len(values) != len(self._columns):
            raise SchemaError(
                f"row arity {len(values)} != schema arity {len(self._columns)}"
            )
        for col, value in zip(self._columns, values):
            if not col.dtype.validate(value):
                raise SchemaError(
                    f"column {col.qualified_name!r} ({col.dtype.value}) "
                    f"rejects value {value!r}"
                )
