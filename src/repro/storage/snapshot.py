"""Database snapshots: one consistent, immutable view across all tables.

A :class:`DatabaseSnapshot` captures every table's published
:class:`~repro.storage.table.TableVersion` at one instant (statement
*admission* in the serving layer).  Execution then resolves every
``catalog.table(name)`` lookup through the snapshot, so the whole plan —
row scans, rank-index scans, and the batched columnar path alike — reads
exactly the versions that were current at admission, no matter how many
new versions concurrent writers publish while the query runs.

The snapshot deliberately exposes the same ``table()`` surface as
:class:`~repro.storage.catalog.Catalog`, and each captured version exposes
the same read surface as :class:`~repro.storage.table.Table` — execution
operators cannot tell (and must not care) whether they run against the
live catalog or a frozen snapshot.  This duck-typing is the snapshot
contract the per-run :class:`~repro.execution.iterator.ExecutionContext`
relies on: operators may only touch the catalog through ``table(name)``
and the returned object's read API.

Snapshots are cheap: capturing is O(#tables) reference copies (versions
are immutable and shared), so per-statement capture is viable even under
heavy traffic.
"""

from __future__ import annotations

from .catalog import Catalog, CatalogError
from .table import TableVersion


class DatabaseSnapshot:
    """An immutable ``{table name -> TableVersion}`` capture of a catalog.

    Ranking-predicate lookups pass through to the live catalog — predicate
    registrations are append-only and predicates themselves are immutable,
    so they need no versioning.
    """

    __slots__ = ("_source", "_versions")

    def __init__(self, catalog: Catalog):
        self._source = catalog
        self._versions: dict[str, TableVersion] = catalog.table_versions()

    def __repr__(self) -> str:
        tables = ", ".join(
            f"{name}@g{version.generation}"
            for name, version in sorted(self._versions.items())
        )
        return f"DatabaseSnapshot({tables})"

    def __contains__(self, name: str) -> bool:
        return name in self._versions

    # -- the Catalog read surface execution relies on ----------------------
    def table(self, name: str) -> TableVersion:
        """The captured version of a table (raises on unknown names, with
        the same exception type the live catalog uses)."""
        try:
            return self._versions[name]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._versions

    def tables(self):
        """The captured versions (tabular read surface, like Catalog)."""
        return iter(self._versions.values())

    def predicate(self, name: str):
        return self._source.predicate(name)

    def has_predicate(self, name: str) -> bool:
        return self._source.has_predicate(name)

    # -- introspection -----------------------------------------------------
    @property
    def generations(self) -> dict[str, int]:
        """Per-table generation at capture time (for tests/diagnostics)."""
        return {
            name: version.generation for name, version in self._versions.items()
        }

    def total_rows(self) -> int:
        return sum(v.row_count for v in self._versions.values())
