"""Multi-statement transactions over copy-on-write table versions.

A :class:`Transaction` extends PR 5's single-statement snapshot isolation
to statement *groups*: ``BEGIN`` captures one
:class:`~repro.storage.snapshot.DatabaseSnapshot` and every statement in
the transaction reads it; writes buffer in private per-table write sets
(never touching the shared catalog) and apply atomically at ``COMMIT``.
The mechanism is the natural one on this storage layer:

* **reads** go through a :class:`TransactionSnapshot`, which serves the
  begin-time version of each table *overlaid* with the transaction's own
  buffered writes (read-your-own-writes) — built from pinned index copies
  under the same rebind discipline writers use, so the shared versions
  stay frozen;
* **writes** stage :class:`~repro.storage.row.Row` objects with rids
  pre-allocated from the table's monotone ordinal counter (identity is
  final from the moment of buffering; aborted transactions simply waste
  ordinals, which were never reused anyway) and record deleted rids;
* **commit** validates *first-committer-wins*: under the manager lock,
  every rid this transaction deletes must still be present in the table's
  currently-published version.  A concurrent committer that removed one of
  them (the read-modify-write conflict) wins; this transaction aborts with
  :class:`SerializationError` and the client retries.  Validation passing,
  the buffered writes publish table-by-table while begins and snapshot
  captures are held off, so no reader ever observes half a commit.

**One logical clock.**  The manager bumps a single counter at every begin
and every finish, stamping ``begin_seq``/``end_seq`` into one total order.
A transaction's snapshot contains exactly the commits whose ``end_seq``
precedes its ``begin_seq`` — the property the black-box checker
(:mod:`repro.verify`) verifies from recorded histories, which is why
begin, snapshot capture and commit publication all serialize on the one
manager lock (each is O(#tables) or less; the lock is never held during
statement execution).

**Lock order** is manager lock → table write locks (sorted by name) →
catalog registry lock; no other code path takes them in the opposite
direction, and plain (non-transactional) writers still take only their
table's write lock, so autocommit DML and transactions interleave safely.
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from ..observe.trace import _NULL_CONTEXT
from .row import Row
from .snapshot import DatabaseSnapshot
from .table import Table, TableVersion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .catalog import Catalog


class TransactionError(Exception):
    """Misuse of the transaction API (no active transaction, reuse after
    commit, …)."""


class SerializationError(TransactionError):
    """First-committer-wins conflict: another transaction committed a
    write to a row this transaction also wrote.  The transaction is
    aborted; the client may retry it from ``BEGIN``."""


def retry_backoff(
    attempt: int,
    backoff: float,
    max_backoff: float = 0.5,
    rng: "random.Random | None" = None,
) -> float:
    """The delay before retry ``attempt`` (0-based) of a serialization
    conflict: exponential in the attempt, capped at ``max_backoff``, with
    uniform jitter in (0.5, 1.0]× so colliding retriers decorrelate.
    Shared by every ``run_transaction`` surface (embedded, in-process
    client, remote session)."""
    base = min(backoff * (2**attempt), max_backoff)
    roll = rng.random() if rng is not None else random.random()
    return base * (0.5 + 0.5 * roll)


class _WriteSet:
    """One transaction's buffered writes against one table."""

    __slots__ = ("table", "staged", "deleted", "mutations", "_overlay", "_overlay_at")

    def __init__(self, table: Table):
        self.table = table
        #: buffered inserts, carrying their final (pre-allocated) rids
        self.staged: list[Row] = []
        #: rids of snapshot rows this transaction deletes
        self.deleted: set[tuple[tuple[str, int], ...]] = set()
        #: bumped by every buffer change; keys the overlay cache
        self.mutations = 0
        self._overlay: TableVersion | None = None
        self._overlay_at = -1

    @property
    def dirty(self) -> bool:
        return bool(self.staged) or bool(self.deleted)

    def effective(self, base: TableVersion) -> TableVersion:
        """The base version with this write set overlaid — what the
        transaction's own statements read.  Cached per buffer state; the
        overlay's indexes are pinned copies mutated by rebinding, so
        ``base`` (shared with every other reader) stays frozen."""
        if not self.dirty:
            return base
        if self._overlay is not None and self._overlay_at == self.mutations:
            return self._overlay
        rows = tuple(
            row for row in base._rows if row.rid not in self.deleted
        ) + tuple(self.staged)
        indexes = {}
        for name, index in base.indexes.items():
            copy = index.pinned()
            if self.deleted:
                copy.remove_rids(self.deleted)
            if self.staged:
                copy.insert_many(list(self.staged))
            indexes[name] = copy
        self._overlay = TableVersion(
            base.name, base.schema, rows, indexes, base.generation
        )
        self._overlay_at = self.mutations
        return self._overlay


class TransactionSnapshot:
    """The begin-time snapshot overlaid with the transaction's own buffered
    writes.  Duck-types :class:`~repro.storage.snapshot.DatabaseSnapshot`
    (the same ``table()`` read surface), so execution cannot tell it is
    reading inside a transaction — the isolation contract of
    :class:`~repro.execution.iterator.ExecutionContext` carries over."""

    __slots__ = ("_base", "_transaction")

    def __init__(self, base: DatabaseSnapshot, transaction: "Transaction"):
        self._base = base
        self._transaction = transaction

    def __repr__(self) -> str:
        return (
            f"TransactionSnapshot(txn={self._transaction.txn_id}, "
            f"base={self._base!r})"
        )

    def __contains__(self, name: str) -> bool:
        return name in self._base

    def table(self, name: str) -> TableVersion:
        version = self._base.table(name)
        write_set = self._transaction._write_sets.get(name)
        if write_set is None:
            return version
        return write_set.effective(version)

    def has_table(self, name: str) -> bool:
        return self._base.has_table(name)

    def tables(self) -> Iterator[TableVersion]:
        for version in self._base.tables():
            yield self.table(version.name)

    def predicate(self, name: str):
        return self._base.predicate(name)

    def has_predicate(self, name: str) -> bool:
        return self._base.has_predicate(name)

    @property
    def generations(self) -> dict[str, int]:
        return self._base.generations

    def total_rows(self) -> int:
        return sum(v.row_count for v in self.tables())


#: terminal + live transaction states
ACTIVE, COMMITTED, ABORTED, ROLLED_BACK = (
    "active",
    "committed",
    "aborted",
    "rolled-back",
)


class Transaction:
    """One multi-statement transaction: a begin-time snapshot, buffered
    writes, and a statement-level event log (consumed by the history
    recorder).  Obtain via ``database.begin()`` or a session's ``BEGIN``;
    finish with :meth:`commit` or :meth:`rollback`."""

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        begin_seq: int,
        snapshot: DatabaseSnapshot,
        session: "str | None" = None,
    ):
        self._manager = manager
        self.txn_id = txn_id
        self.begin_seq = begin_seq
        self.end_seq: "int | None" = None
        self.status = ACTIVE
        self.session = session
        self.snapshot = snapshot
        self._write_sets: dict[str, _WriteSet] = {}
        self._lock = threading.RLock()
        #: replay ops for the WAL, accumulated as writes buffer and
        #: written *at commit, under the manager lock* — never earlier.
        #: Logging op-by-op as statements execute would let a checkpoint's
        #: WAL rotation land mid-transaction, splitting one commit group
        #: across segments; the checkpoint (which only contains commits
        #: from *before* its rotation) would then be paired with a tail
        #: holding the commit record but not all of its ops.  Group
        #: logging under the same lock rotation takes makes each segment
        #: boundary a whole-transaction boundary.
        self._wal_ops: list[tuple[str, str, list]] = []
        #: statement-level log: queries with observed rows, buffered DML
        self.events: list[dict[str, Any]] = []

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.txn_id}, status={self.status}, "
            f"begin_seq={self.begin_seq}, tables={sorted(self._write_sets)})"
        )

    @property
    def active(self) -> bool:
        return self.status == ACTIVE

    @property
    def read_only(self) -> bool:
        """True while no write is buffered (read-only commits skip
        validation and plan-cache invalidation entirely)."""
        return not any(ws.dirty for ws in self._write_sets.values())

    def _check_active(self) -> None:
        if self.status != ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}; "
                "BEGIN a new one to continue"
            )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_view(self) -> TransactionSnapshot:
        """The snapshot this transaction's statements execute against:
        begin-time versions overlaid with its own buffered writes."""
        self._check_active()
        return TransactionSnapshot(self.snapshot, self)

    def record_query(
        self, sql: str, params: Any, rows: "list[tuple] | None"
    ) -> None:
        """Log one executed query and the row values it observed (the
        read side of the recorded history)."""
        with self._lock:
            self.events.append(
                {"op": "query", "sql": sql, "params": params, "rows": rows}
            )

    # ------------------------------------------------------------------
    # buffered writes
    # ------------------------------------------------------------------
    def _write_set(self, table: Table) -> _WriteSet:
        write_set = self._write_sets.get(table.name)
        if write_set is None:
            write_set = self._write_sets[table.name] = _WriteSet(table)
        return write_set

    def insert(self, table: Table, rows: Iterable[Sequence[Any]]) -> int:
        """Buffer an insert of value tuples; visible to this transaction's
        own reads immediately, to others only after commit."""
        self._check_active()
        materialized = [tuple(values) for values in rows]
        for values in materialized:
            table.schema.validate_row(values)
        if not materialized:
            return 0
        with self._lock:
            write_set = self._write_set(table)
            base = table.allocate_ordinals(len(materialized))
            staged = [
                Row.base(values, table.name, base + i)
                for i, values in enumerate(materialized)
            ]
            if self._manager.wal is not None:
                self._wal_ops.append(
                    (
                        "insert",
                        table.name,
                        [(row.rid[0][1], list(row.values)) for row in staged],
                    )
                )
            write_set.staged.extend(staged)
            write_set.mutations += 1
            self.events.append(
                {"op": "insert", "table": table.name, "rows": materialized}
            )
            return len(materialized)

    def delete_where(
        self,
        table: Table,
        condition: "Callable[[Row], bool] | None" = None,
        *,
        column: "str | None" = None,
        equals: Any = None,
    ) -> int:
        """Buffer a delete: rows matching against *this transaction's
        effective view* (snapshot + own writes) are marked deleted.  The
        matched set freezes now — rows other transactions insert later are
        not retroactively matched (SI allows phantoms; first-committer-wins
        still catches conflicting deletes of shared rows at commit)."""
        self._check_active()
        if (condition is None) == (column is None):
            raise ValueError("pass exactly one of: condition, column=/equals=")
        recorded_column, recorded_equals = column, equals
        if condition is None:
            qualified = column if "." in column else f"{table.name}.{column}"
            position = table.schema.index_of(qualified)

            def condition(row: Row, _p=position, _v=equals) -> bool:
                return row[_p] == _v

        with self._lock:
            write_set = self._write_set(table)
            effective = write_set.effective(self.snapshot.table(table.name))
            matched = [row for row in effective.rows() if condition(row)]
            if matched:
                staged_rids = {row.rid for row in write_set.staged}
                doomed = {row.rid for row in matched}
                if self._manager.wal is not None:
                    # the *full* matched set, own staged rows included —
                    # replay re-derives the unstaging below, so it must
                    # see the same delete the buffer saw
                    self._wal_ops.append(
                        (
                            "delete",
                            table.name,
                            sorted(rid[0][1] for rid in doomed),
                        )
                    )
                # deleting an own staged row just unstages it
                write_set.staged = [
                    row for row in write_set.staged if row.rid not in doomed
                ]
                write_set.deleted |= doomed - staged_rids
                write_set.mutations += 1
            self.events.append(
                {
                    "op": "delete",
                    "table": table.name,
                    "column": recorded_column,
                    "equals": recorded_equals,
                    "matched": len(matched),
                }
            )
            return len(matched)

    # ------------------------------------------------------------------
    # finish
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Validate and publish; returns the commit sequence number.
        Raises :class:`SerializationError` (transaction aborted) on a
        first-committer-wins conflict."""
        return self._manager.commit(self)

    def rollback(self) -> None:
        """Discard buffered writes.  No-op on an already-finished
        transaction, so cleanup paths may call it unconditionally."""
        self._manager.rollback(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if self.active:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()


class TransactionManager:
    """Begin/commit/rollback coordination over one catalog.

    Owns the logical clock and the commit critical section; see the module
    docstring for the protocol.  ``on_commit`` (the engine wires the plan
    cache invalidation here) fires exactly once per *writing* commit —
    buffered writes never fire it, rollbacks and read-only commits never
    fire it.
    """

    def __init__(
        self,
        catalog: "Catalog",
        on_commit: "Callable[[], None] | None" = None,
    ):
        self.catalog = catalog
        self.on_commit = on_commit
        #: the attached :class:`~repro.storage.wal.WriteAheadLog`, or None.
        #: When set, a writing transaction's commit record is appended and
        #: fsynced *before* publication — the durability point: an
        #: acknowledged commit survives any crash after it, and a crash
        #: before it leaves no trace recovery would apply.
        self.wal: Any = None
        #: the engine's :class:`~repro.observe.trace.Tracer`, when
        #: attached — commit and WAL-fsync report spans into whatever
        #: query trace is active on the committing thread.
        self.tracer: Any = None
        self._lock = threading.Lock()
        self._clock = 0
        self._next_txn_id = 1
        self._listeners: list[Any] = []
        #: counters (read under the lock via summary())
        self.begun = 0
        self.committed = 0
        self.rolled_back = 0
        self.conflicts = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def add_listener(self, listener: Any) -> None:
        """Subscribe to transaction lifecycle events.  A listener may
        implement ``transaction_began(txn)`` and/or
        ``transaction_finished(txn)``; both are called under the manager
        lock, so they must be fast and must not call back into the
        manager (the history recorder only appends to a list)."""
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, event: str, txn: Transaction) -> None:
        for listener in self._listeners:
            hook = getattr(listener, event, None)
            if hook is not None:
                hook(txn)

    def summary(self) -> dict[str, int]:
        with self._lock:
            return {
                "txns_begun": self.begun,
                "txns_committed": self.committed,
                "txns_rolled_back": self.rolled_back,
                "txn_conflicts": self.conflicts,
                "txn_clock": self._clock,
            }

    # ------------------------------------------------------------------
    # the clock-serialized operations
    # ------------------------------------------------------------------
    def capture(self) -> DatabaseSnapshot:
        """A consistent snapshot, serialized with commit publication —
        every snapshot observes whole commits only (all tables or none).
        This is what ``Database.snapshot()`` delegates to."""
        with self._lock:
            return DatabaseSnapshot(self.catalog)

    def exclusive(self) -> threading.Lock:
        """The manager lock, for callers that must serialize with begins
        and commit publication — the checkpoint path holds it across
        {capture table versions, rotate the WAL} so the snapshot contains
        exactly the commits of the pre-rotation segments."""
        return self._lock

    def ensure_txn_id(self, floor: int) -> None:
        """Advance the transaction-id allocator to at least ``floor`` —
        recovery calls this so post-crash transactions never reuse an id
        that appears in the replayed log."""
        with self._lock:
            if floor > self._next_txn_id:
                self._next_txn_id = floor

    def begin(self, session: "str | None" = None) -> Transaction:
        """Start a transaction: bump the clock, capture the snapshot, all
        atomically with respect to commits."""
        with self._lock:
            self._clock += 1
            txn = Transaction(
                manager=self,
                txn_id=self._next_txn_id,
                begin_seq=self._clock,
                snapshot=DatabaseSnapshot(self.catalog),
                session=session,
            )
            self._next_txn_id += 1
            self.begun += 1
            self._notify("transaction_began", txn)
            return txn

    def _span(self, name: str, **attrs: Any):
        tracer = self.tracer
        if tracer is None:
            return _NULL_CONTEXT
        return tracer.span(name, **attrs)

    def commit(self, txn: Transaction) -> int:
        """First-committer-wins validation, then atomic publication."""
        with self._span("commit", txn=txn.txn_id):
            return self._commit(txn)

    def _commit(self, txn: Transaction) -> int:
        with self._lock:
            txn._check_active()
            dirty = sorted(
                (ws for ws in txn._write_sets.values() if ws.dirty),
                key=lambda ws: ws.table.name,
            )
            if not dirty:  # read-only: nothing to validate or publish
                return self._finish(txn, COMMITTED)

            conflicts: list[str] = []
            for write_set in dirty:
                live = {
                    row.rid for row in write_set.table.version()._rows
                }
                gone = write_set.deleted - live
                if gone:
                    conflicts.append(
                        f"{write_set.table.name}: {len(gone)} row(s) already "
                        "deleted by a concurrent commit"
                    )
            if conflicts:
                self.conflicts += 1
                self._finish(txn, ABORTED)
                raise SerializationError(
                    f"transaction {txn.txn_id} lost first-committer-wins "
                    "validation (" + "; ".join(conflicts) + "); retry from BEGIN"
                )

            # The durability point: the whole commit group — begin, every
            # buffered op, then the commit record — is written here, under
            # the manager lock, and the commit record is fsynced before
            # anything publishes.  Writing the group at commit (rather
            # than op-by-op as statements ran) means a checkpoint's WAL
            # rotation, which takes this same lock, can never split one
            # group across segments.  If this raises (injected crash, disk
            # failure) the transaction stays unpublished in memory —
            # whether it survives recovery depends on whether the commit
            # record made it down, which is exactly a real crash's
            # ambiguity.
            if self.wal is not None and txn._wal_ops:
                with self._span("wal_fsync", ops=len(txn._wal_ops)):
                    self.wal.log_begin(txn.txn_id)
                    for kind, name, payload in txn._wal_ops:
                        if kind == "insert":
                            self.wal.log_insert(txn.txn_id, name, payload)
                        else:
                            self.wal.log_delete(txn.txn_id, name, payload)
                    self.wal.log_commit(txn.txn_id)

            for write_set in dirty:
                write_set.table.apply_commit(
                    write_set.deleted, write_set.staged
                )
            commit_seq = self._finish(txn, COMMITTED)
        # Outside the manager lock: invalidation takes the planner lock,
        # and holding ours across it would nest two subsystems' locks.
        if self.on_commit is not None:
            self.on_commit()
        return commit_seq

    def rollback(self, txn: Transaction) -> None:
        with self._lock:
            if txn.status != ACTIVE:
                return
            self._finish(txn, ROLLED_BACK)
            # Nothing to undo in the log: a transaction's records are only
            # written at commit, so a rolled-back one never touched it.

    def _finish(self, txn: Transaction, status: str) -> int:
        """Stamp the end of a transaction (manager lock held)."""
        self._clock += 1
        txn.end_seq = self._clock
        txn.status = status
        if status == COMMITTED:
            self.committed += 1
        elif status == ROLLED_BACK:
            self.rolled_back += 1
        self._notify("transaction_finished", txn)
        return txn.end_seq
