"""System catalog.

The :class:`Catalog` owns every table, its statistics, and the registry of
*ranking predicates* (user-defined scoring functions with an evaluation
cost).  Both the binder (name resolution) and the optimizer (statistics,
access-path discovery) consult it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .schema import Schema
from .stats import TableStats, analyze_table
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algebra.predicates import RankingPredicate


class CatalogError(Exception):
    """Raised for unknown/duplicate tables or predicates."""


class Catalog:
    """Registry of tables, statistics, and ranking predicates."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._predicates: dict[str, "RankingPredicate"] = {}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (and its cached statistics)."""
        if name not in self._tables:
            raise CatalogError(f"unknown table: {name!r}")
        del self._tables[name]
        self._stats.pop(name, None)

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def analyze(self, name: str) -> TableStats:
        """(Re)compute and cache statistics for a table."""
        stats = analyze_table(self.table(name))
        self._stats[name] = stats
        return stats

    def stats(self, name: str) -> TableStats:
        """Statistics for a table, computing them lazily on first use."""
        if name not in self._stats:
            return self.analyze(name)
        return self._stats[name]

    # ------------------------------------------------------------------
    # ranking predicates
    # ------------------------------------------------------------------
    def register_predicate(self, predicate: "RankingPredicate") -> None:
        """Register a ranking predicate by name."""
        if predicate.name in self._predicates:
            raise CatalogError(f"ranking predicate {predicate.name!r} already exists")
        self._predicates[predicate.name] = predicate

    def predicate(self, name: str) -> "RankingPredicate":
        try:
            return self._predicates[name]
        except KeyError:
            raise CatalogError(f"unknown ranking predicate: {name!r}") from None

    def has_predicate(self, name: str) -> bool:
        return name in self._predicates

    def predicates(self) -> Iterator["RankingPredicate"]:
        return iter(self._predicates.values())
