"""System catalog.

The :class:`Catalog` owns every table, its statistics, and the registry of
*ranking predicates* (user-defined scoring functions with an evaluation
cost).  Both the binder (name resolution) and the optimizer (statistics,
access-path discovery) consult it.

Registry operations are guarded by one re-entrant lock so concurrent
sessions can create tables, analyze and capture snapshots without tearing
the dictionaries; per-table data is versioned separately (see
:mod:`repro.storage.table`), so the lock is never held during DML.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

from .schema import Schema
from .stats import TableStats, analyze_table
from .table import Table, TableVersion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algebra.predicates import RankingPredicate


class CatalogError(Exception):
    """Raised for unknown/duplicate tables or predicates."""


class Catalog:
    """Registry of tables, statistics, and ranking predicates."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._predicates: dict[str, "RankingPredicate"] = {}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table."""
        with self._lock:
            if name in self._tables:
                raise CatalogError(f"table {name!r} already exists")
            table = Table(name, schema)
            self._tables[name] = table
            return table

    def drop_table(self, name: str) -> None:
        """Remove a table (and its cached statistics)."""
        with self._lock:
            if name not in self._tables:
                raise CatalogError(f"unknown table: {name!r}")
            del self._tables[name]
            self._stats.pop(name, None)

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        with self._lock:
            return iter(list(self._tables.values()))

    def table_versions(self) -> dict[str, TableVersion]:
        """One consistent capture of every table's published version — the
        building block of :class:`~repro.storage.snapshot.DatabaseSnapshot`.

        The lock only pins the *registry* while versions are read; each
        version itself is immutable, so the capture is O(#tables) and never
        blocks writers for longer than a dict scan.
        """
        with self._lock:
            return {name: table.version() for name, table in self._tables.items()}

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def analyze(self, name: str) -> TableStats:
        """(Re)compute and cache statistics for a table."""
        stats = analyze_table(self.table(name))
        with self._lock:
            self._stats[name] = stats
        return stats

    def stats(self, name: str) -> TableStats:
        """Statistics for a table, computing them lazily on first use."""
        if name not in self._stats:
            return self.analyze(name)
        return self._stats[name]

    # ------------------------------------------------------------------
    # ranking predicates
    # ------------------------------------------------------------------
    def register_predicate(self, predicate: "RankingPredicate") -> None:
        """Register a ranking predicate by name."""
        with self._lock:
            if predicate.name in self._predicates:
                raise CatalogError(
                    f"ranking predicate {predicate.name!r} already exists"
                )
            self._predicates[predicate.name] = predicate

    def predicate(self, name: str) -> "RankingPredicate":
        try:
            return self._predicates[name]
        except KeyError:
            raise CatalogError(f"unknown ranking predicate: {name!r}") from None

    def has_predicate(self, name: str) -> bool:
        return name in self._predicates

    def predicates(self) -> Iterator["RankingPredicate"]:
        with self._lock:
            return iter(list(self._predicates.values()))
