"""Row representation.

Rows flowing through the engine are :class:`Row` objects: an immutable value
tuple plus a *row identity* used for deterministic tie-breaking (the paper's
"arbitrary deterministic tie-breaker function ... e.g., by unique tuple IDs")
and for duplicate detection in rank-aware set operations.

Join outputs carry the concatenation of the input value tuples and the
concatenation of the input identities, so identity remains unique and
deterministic throughout a plan.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence


class Row:
    """An immutable row with a deterministic identity.

    ``rid`` is a tuple of ``(table_name, ordinal)`` pairs — one pair for each
    base row that contributed to this row (one for base-table rows, several
    for join outputs).
    """

    __slots__ = ("values", "rid")

    def __init__(self, values: Sequence[Any], rid: tuple[tuple[str, int], ...]):
        self.values: tuple[Any, ...] = tuple(values)
        self.rid: tuple[tuple[str, int], ...] = rid

    @classmethod
    def base(cls, values: Sequence[Any], table: str, ordinal: int) -> "Row":
        """Build a base-table row with identity ``(table, ordinal)``."""
        return cls(values, ((table, ordinal),))

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.rid == other.rid and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.rid)

    def __repr__(self) -> str:
        return f"Row({list(self.values)!r}, rid={self.rid!r})"

    def concat(self, other: "Row") -> "Row":
        """Concatenate with ``other`` (join output row)."""
        return Row(self.values + other.values, self.rid + other.rid)

    def project(self, positions: Sequence[int]) -> "Row":
        """Keep only the values at ``positions`` (identity is preserved)."""
        return Row(tuple(self.values[p] for p in positions), self.rid)
