"""Table statistics.

The optimizer's cost model needs the classical statistics a System-R style
optimizer keeps: row counts, per-column distinct-value counts (for join and
equality selectivity), min/max, null fraction, and equi-width histograms for
range selectivity.  :func:`analyze_table` computes them in one pass, the way
``ANALYZE`` does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from .table import Table

DEFAULT_HISTOGRAM_BUCKETS = 16


@dataclass
class Histogram:
    """Equi-width histogram over a numeric column."""

    low: float
    high: float
    counts: list[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def selectivity_le(self, value: float) -> float:
        """Estimated fraction of values ``<= value``."""
        if self.total == 0:
            return 0.0
        if value >= self.high:
            return 1.0
        if value < self.low:
            return 0.0
        width = (self.high - self.low) / len(self.counts) or 1.0
        bucket = min(int((value - self.low) / width), len(self.counts) - 1)
        below = sum(self.counts[:bucket])
        # Linear interpolation within the bucket.
        frac = ((value - self.low) - bucket * width) / width
        return (below + frac * self.counts[bucket]) / self.total

    def selectivity_between(self, low: float, high: float) -> float:
        """Estimated fraction of values in ``[low, high]``."""
        return max(0.0, self.selectivity_le(high) - self.selectivity_le(low))


@dataclass
class ColumnStats:
    """Statistics for one column."""

    name: str
    n_distinct: int = 0
    null_fraction: float = 0.0
    min_value: Any = None
    max_value: Any = None
    histogram: Histogram | None = None

    def equality_selectivity(self) -> float:
        """Estimated selectivity of ``col = constant`` (uniformity assumption)."""
        if self.n_distinct <= 0:
            return 1.0
        return (1.0 - self.null_fraction) / self.n_distinct


@dataclass
class TableStats:
    """Statistics for a whole table."""

    table_name: str
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def join_selectivity(self, column: str, other: "TableStats", other_column: str) -> float:
        """Classic equi-join selectivity: ``1 / max(V(R,a), V(S,b))``."""
        mine = self.columns.get(column)
        theirs = other.columns.get(other_column)
        v1 = mine.n_distinct if mine else 0
        v2 = theirs.n_distinct if theirs else 0
        denominator = max(v1, v2)
        if denominator <= 0:
            return 1.0
        return 1.0 / denominator


def analyze_table(table: Table, histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS) -> TableStats:
    """Compute :class:`TableStats` for a table in a single pass."""
    stats = TableStats(table.name, row_count=table.row_count)
    n = table.row_count
    names = table.schema.column_names()
    values_by_column: list[list[Any]] = [[] for __ in names]
    nulls = [0] * len(names)
    for row in table.rows():
        for i, value in enumerate(row.values):
            if value is None:
                nulls[i] += 1
            else:
                values_by_column[i].append(value)
    for i, name in enumerate(names):
        values = values_by_column[i]
        col = ColumnStats(name)
        col.null_fraction = (nulls[i] / n) if n else 0.0
        col.n_distinct = len(set(values))
        if values and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            col.min_value = min(values)
            col.max_value = max(values)
            col.histogram = _build_histogram(values, histogram_buckets)
        elif values:
            col.min_value = min(values)
            col.max_value = max(values)
        stats.columns[name] = col
    return stats


def _build_histogram(values: list[float], buckets: int) -> Histogram:
    low = float(min(values))
    high = float(max(values))
    if math.isclose(low, high):
        return Histogram(low, high, [len(values)])
    counts = [0] * buckets
    width = (high - low) / buckets
    for v in values:
        bucket = min(int((v - low) / width), buckets - 1)
        counts[bucket] += 1
    return Histogram(low, high, counts)
