"""Storage substrate: schemas, rows, versioned heap tables, indexes,
catalog, statistics, consistent database snapshots, and multi-statement
transactions over the copy-on-write version chains."""

from .catalog import Catalog, CatalogError
from .index import ColumnIndex, Index, MultiKeyIndex, RankIndex
from .row import Row
from .schema import Column, DataType, Schema, SchemaError
from .snapshot import DatabaseSnapshot
from .stats import ColumnStats, Histogram, TableStats, analyze_table
from .table import ColumnarView, Table, TableVersion
from .transaction import (
    SerializationError,
    Transaction,
    TransactionError,
    TransactionManager,
    TransactionSnapshot,
)

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnIndex",
    "ColumnStats",
    "ColumnarView",
    "DataType",
    "DatabaseSnapshot",
    "Histogram",
    "Index",
    "MultiKeyIndex",
    "RankIndex",
    "Row",
    "Schema",
    "SchemaError",
    "SerializationError",
    "Table",
    "TableStats",
    "TableVersion",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TransactionSnapshot",
    "analyze_table",
]
