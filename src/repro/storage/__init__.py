"""Storage substrate: schemas, rows, versioned heap tables, indexes,
catalog, statistics, and consistent database snapshots."""

from .catalog import Catalog, CatalogError
from .index import ColumnIndex, Index, MultiKeyIndex, RankIndex
from .row import Row
from .schema import Column, DataType, Schema, SchemaError
from .snapshot import DatabaseSnapshot
from .stats import ColumnStats, Histogram, TableStats, analyze_table
from .table import ColumnarView, Table, TableVersion

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnIndex",
    "ColumnStats",
    "ColumnarView",
    "DataType",
    "DatabaseSnapshot",
    "Histogram",
    "Index",
    "MultiKeyIndex",
    "RankIndex",
    "Row",
    "Schema",
    "SchemaError",
    "Table",
    "TableStats",
    "TableVersion",
    "analyze_table",
]
