"""Storage substrate: schemas, rows, versioned heap tables, indexes,
catalog, statistics, consistent database snapshots, multi-statement
transactions over the copy-on-write version chains, the write-ahead log
behind crash-safe durability, and the fault-injection hooks the crash
tests drive it with."""

from .catalog import Catalog, CatalogError
from .faults import (
    CRASHPOINT_NAMES,
    CRASHPOINTS,
    FaultInjector,
    InjectedCrash,
    NO_FAULTS,
)
from .index import ColumnIndex, Index, MultiKeyIndex, RankIndex
from .row import Row
from .schema import Column, DataType, Schema, SchemaError
from .snapshot import DatabaseSnapshot
from .stats import ColumnStats, Histogram, TableStats, analyze_table
from .table import ColumnarView, Table, TableVersion
from .transaction import (
    SerializationError,
    Transaction,
    TransactionError,
    TransactionManager,
    TransactionSnapshot,
)
from .wal import WALError, WriteAheadLog, committed_groups, scan_segments

__all__ = [
    "CRASHPOINT_NAMES",
    "CRASHPOINTS",
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnIndex",
    "ColumnStats",
    "ColumnarView",
    "DataType",
    "DatabaseSnapshot",
    "FaultInjector",
    "Histogram",
    "Index",
    "InjectedCrash",
    "MultiKeyIndex",
    "NO_FAULTS",
    "RankIndex",
    "Row",
    "Schema",
    "SchemaError",
    "SerializationError",
    "Table",
    "TableStats",
    "TableVersion",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TransactionSnapshot",
    "WALError",
    "WriteAheadLog",
    "analyze_table",
    "committed_groups",
    "scan_segments",
]
