"""Storage substrate: schemas, rows, heap tables, indexes, catalog, stats."""

from .catalog import Catalog, CatalogError
from .index import ColumnIndex, Index, MultiKeyIndex, RankIndex
from .row import Row
from .schema import Column, DataType, Schema, SchemaError
from .stats import ColumnStats, Histogram, TableStats, analyze_table
from .table import Table

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnIndex",
    "ColumnStats",
    "DataType",
    "Histogram",
    "Index",
    "MultiKeyIndex",
    "RankIndex",
    "Row",
    "Schema",
    "SchemaError",
    "Table",
    "TableStats",
    "analyze_table",
]
