"""Heap tables with copy-on-write version publication.

A :class:`Table` is a heap of rows with a fixed schema.  It is the unit the
catalog manages and scans read from.  Secondary indexes
(:mod:`repro.storage.index`) are registered on the table and kept in sync
by every write.

**Versioning (snapshot-isolated reads).**  All table state a reader can
observe — the row heap, every secondary index, and the lazily-built
columnar view — is published as an immutable :class:`TableVersion`.
Writers serialize on the table's write lock, prepare the whole write
(heap copy, index maintenance), and publish the next version with a single
attribute assignment, bumping the per-table generation.  Index maintenance
follows a *rebind* discipline (see :class:`~repro.storage.index.Index`):
entry arrays are never mutated in place, so a version can pin an index's
state with an O(1) shallow copy.  A reader that captured a version
(directly, or through a :class:`~repro.storage.snapshot.DatabaseSnapshot`)
keeps scanning exactly the rows, index entries and column arrays it
started with; it never blocks a writer and never observes half-applied
DML.

The convenience read API on :class:`Table` (``rows()``, ``columns()``,
``find_index()`` …) delegates to the *current* version — single-threaded
code behaves exactly as before, and index objects handed out by
``attach_index``/``create_*_index`` remain live handles that always
reflect the latest data.  Multi-statement readers that need one consistent
view across calls must capture :meth:`Table.version` once (the serving
layer does this at statement admission).

Besides the row heap, each version carries a lazily-built *columnar view*
(:meth:`TableVersion.columns`): one Python list per column, parallel to
the heap, plus the row-id and row-object vectors.  The batched execution
path (:mod:`repro.execution.batch`) reads this view so unranked plan
segments can move whole column vectors instead of one :class:`Row` per
operator call.  The view is cached *per version* — publication-safe by
construction: a writer publishing a new version never touches the arrays
an old snapshot's readers are scanning, and a version whose heap is
unchanged (index attachment) carries the already-built view forward.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from .row import Row
from .schema import Schema, SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .index import Index


@dataclass(frozen=True)
class ColumnarView:
    """An immutable columnar snapshot of a table's heap.

    ``columns[i]`` is the full vector of column ``i``'s values in heap
    order; ``rids`` and ``rows`` are the parallel identity and row-object
    vectors.  All vectors share indices with each other and with the heap
    ordinals at snapshot time.
    """

    schema: Schema
    columns: tuple[list, ...]
    rids: list[tuple[tuple[str, int], ...]]
    rows: list[Row]

    def __len__(self) -> int:
        return len(self.rows)


class TableVersion:
    """One immutable published version of a table.

    Exposes the full *read* API of :class:`Table` (``rows``, ``columns``,
    ``find_index``, ``indexes``, ``row_count`` …) so execution operators
    and snapshots can treat a captured version exactly like the table
    itself.  Nothing here changes after publication — the only
    lazily-filled field is the cached columnar view, whose construction is
    deterministic and guarded by a per-version lock, so every reader sees
    the same arrays.
    """

    __slots__ = (
        "name",
        "schema",
        "generation",
        "_rows",
        "_indexes",
        "_columnar",
        "_columnar_lock",
    )

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: tuple[Row, ...],
        indexes: dict[str, "Index"],
        generation: int,
        columnar: ColumnarView | None = None,
    ):
        self.name = name
        self.schema = schema
        self.generation = generation
        self._rows = rows
        #: pinned index snapshots (their entry arrays never change again)
        self._indexes = indexes
        self._columnar = columnar
        self._columnar_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"TableVersion({self.name!r}, gen={self.generation}, "
            f"rows={len(self._rows)})"
        )

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def indexes(self) -> dict[str, "Index"]:
        """This version's pinned index snapshots by index name."""
        return dict(self._indexes)

    def rows(self) -> Iterator[Row]:
        """Iterate over this version's rows in heap (insertion) order."""
        return iter(self._rows)

    def row_at(self, position: int) -> Row:
        """Fetch the row at the given heap position (== the insertion
        ordinal while no delete has run on the table)."""
        return self._rows[position]

    def columns(self) -> ColumnarView:
        """The (cached) columnar view of this version's heap.

        Built on first use, once per version; the returned snapshot is
        immutable and safe to share across concurrent scans.  Readers
        holding this version keep these exact column arrays no matter how
        many newer versions writers publish.
        """
        view = self._columnar
        if view is not None:
            return view
        with self._columnar_lock:
            if self._columnar is None:
                rows = list(self._rows)
                if rows:
                    vectors = tuple(
                        list(v) for v in zip(*(r.values for r in rows))
                    )
                else:
                    vectors = tuple([] for __ in range(len(self.schema)))
                self._columnar = ColumnarView(
                    schema=self.schema,
                    columns=vectors,
                    rids=[r.rid for r in rows],
                    rows=rows,
                )
        return self._columnar

    def find_index(self, *, key: str | None = None) -> "Index | None":
        """Find an index whose leading key matches ``key`` (a column or
        predicate name), if any."""
        for index in self._indexes.values():
            if index.covers(key):
                return index
        return None


class Table:
    """An in-memory heap table with secondary indexes and COW versioning.

    Reads delegate to the currently-published :class:`TableVersion`; writes
    serialize on the table's write lock, maintain the live index objects
    (rebind discipline, so previously published versions stay frozen) and
    publish a fresh version atomically.  Readers therefore never block
    writers (and vice versa): a scan that captured a version keeps it
    until it finishes.

    The copy-on-write publication makes a *single-row* ``insert`` O(heap);
    bulk loads should use :meth:`insert_many`/:meth:`insert_dicts`, which
    pay one copy per batch.
    """

    def __init__(self, name: str, schema: Schema):
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.schema = schema.with_table(name)
        self._write_lock = threading.RLock()
        #: monotone rid allocator — never reused, even after deletes, so a
        #: row's identity is stable across every version it appears in
        self._next_ordinal = 0
        #: live index objects (stable handles; mutated only under the
        #: write lock, and only by rebinding their entry arrays)
        self._live_indexes: dict[str, "Index"] = {}
        self._version = TableVersion(self.name, self.schema, (), {}, 0)

    def __len__(self) -> int:
        return len(self._version)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self)})"

    # ------------------------------------------------------------------
    # versioned read API (delegates to the current published version)
    # ------------------------------------------------------------------
    def version(self) -> TableVersion:
        """The currently-published immutable version — the snapshot-capture
        point for readers that need one consistent view across calls."""
        return self._version

    @property
    def generation(self) -> int:
        """The published version's generation (bumped by every write)."""
        return self._version.generation

    @property
    def row_count(self) -> int:
        return self._version.row_count

    @property
    def indexes(self) -> dict[str, "Index"]:
        """The live index handles by index name (always-current reads;
        captured versions hold their own pinned snapshots instead)."""
        return dict(self._live_indexes)

    def rows(self) -> Iterator[Row]:
        """Iterate over all rows in heap (insertion) order.

        The iterator is pinned to the version current at the call, so a
        concurrent write never changes (or tears) an in-progress scan.
        """
        return self._version.rows()

    def row_at(self, position: int) -> Row:
        """Fetch the row at the given heap position in the current version."""
        return self._version.row_at(position)

    def columns(self) -> ColumnarView:
        """The current version's (cached) columnar view — see
        :meth:`TableVersion.columns`."""
        return self._version.columns()

    def find_index(self, *, key: str | None = None) -> "Index | None":
        """Find a live index whose leading key matches ``key`` (a column
        or predicate name), if any."""
        for index in self._live_indexes.values():
            if index.covers(key):
                return index
        return None

    # ------------------------------------------------------------------
    # writes (copy-on-write version publication)
    # ------------------------------------------------------------------
    def _publish(
        self, rows: tuple[Row, ...], columnar: ColumnarView | None = None
    ) -> TableVersion:
        """Pin the live indexes and atomically publish the next version
        (write lock held).  ``columnar`` carries a still-valid cached view
        forward when the heap did not change."""
        pinned = {
            name: index.pinned() for name, index in self._live_indexes.items()
        }
        version = TableVersion(
            self.name,
            self.schema,
            rows,
            pinned,
            self._version.generation + 1,
            columnar=columnar,
        )
        self._version = version
        return version

    def insert(self, values: Sequence[Any]) -> Row:
        """Validate and append one row; returns the stored :class:`Row`."""
        self.schema.validate_row(values)
        with self._write_lock:
            row = Row.base(values, self.name, self._next_ordinal)
            self._next_ordinal += 1
            for index in self._live_indexes.values():
                index.insert(row)
            self._publish(self._version._rows + (row,))
            return row

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert many rows; returns the number inserted.

        The bulk path validates *every* row before touching table state, so
        a bad row leaves the table and its indexes unchanged, then extends
        the heap in one copy and feeds each index a single sorted-merge
        batch (:meth:`Index.insert_many`) instead of one bisect-insert per
        row.  The new version publishes only after every index is complete
        — a concurrent reader sees all of the batch or none of it.
        """
        materialized = list(rows)
        for values in materialized:
            self.schema.validate_row(values)
        if not materialized:
            return 0
        with self._write_lock:
            base = self._next_ordinal
            staged = [
                Row.base(values, self.name, base + i)
                for i, values in enumerate(materialized)
            ]
            self._next_ordinal += len(staged)
            for index in self._live_indexes.values():
                index.insert_many(staged)
            self._publish(self._version._rows + tuple(staged))
            return len(staged)

    def insert_dicts(self, rows: Iterable[dict[str, Any]]) -> int:
        """Insert rows given as ``{column: value}`` dicts.

        Missing columns become NULL (None); unknown keys raise
        :class:`SchemaError`.
        """
        names = self.schema.column_names()
        known = set(names)
        staged: list[list[Any]] = []
        for mapping in rows:
            unknown = set(mapping) - known
            if unknown:
                raise SchemaError(
                    f"unknown columns for table {self.name!r}: {sorted(unknown)}"
                )
            staged.append([mapping.get(n) for n in names])
        return self.insert_many(staged)

    def delete_where(self, condition: Callable[[Row], bool]) -> int:
        """Delete every row for which ``condition(row)`` is true; returns
        the number deleted.

        Publishes a new version without the matching rows (surviving rows
        keep their identities — rids are never renumbered or reused), with
        every index filtered to match.  Readers holding an older version
        still see the deleted rows; readers admitted after publication
        never do.
        """
        with self._write_lock:
            keep: list[Row] = []
            dead: set[tuple[tuple[str, int], ...]] = set()
            for row in self._version._rows:
                if condition(row):
                    dead.add(row.rid)
                else:
                    keep.append(row)
            if not dead:
                return 0
            for index in self._live_indexes.values():
                index.remove_rids(dead)
            self._publish(tuple(keep))
            return len(dead)

    # ------------------------------------------------------------------
    # transaction support (see repro.storage.transaction)
    # ------------------------------------------------------------------
    @property
    def next_ordinal(self) -> int:
        """The monotone rid allocator's next value — persisted by
        checkpoints so restored tables never reuse a rid that a logged
        (but not yet replayed) transaction already carries."""
        return self._next_ordinal

    def ensure_next_ordinal(self, floor: int) -> None:
        """Advance the rid allocator to at least ``floor`` (never back).
        WAL replay calls this with one past the highest replayed ordinal."""
        with self._write_lock:
            if floor > self._next_ordinal:
                self._next_ordinal = floor

    def restore_rows(
        self, entries: "Iterable[tuple[int, Sequence[Any]]]", next_ordinal: int
    ) -> int:
        """Bulk-load ``(ordinal, values)`` pairs with their original rids
        — the checkpoint-restore path.  Unlike :meth:`insert_many`, rids
        come from the caller, and the allocator resumes at
        ``next_ordinal`` (or past the highest restored rid if larger).
        Only valid while the table is empty."""
        materialized = [(ordinal, values) for ordinal, values in entries]
        for __, values in materialized:
            self.schema.validate_row(values)
        with self._write_lock:
            if len(self._version):
                raise ValueError(
                    f"restore_rows on non-empty table {self.name!r}"
                )
            restored = [
                Row.base(values, self.name, ordinal)
                for ordinal, values in materialized
            ]
            floor = max(
                [next_ordinal] + [ordinal + 1 for ordinal, __ in materialized]
            )
            if floor > self._next_ordinal:
                self._next_ordinal = floor
            if restored:
                for index in self._live_indexes.values():
                    index.insert_many(restored)
                self._publish(self._version._rows + tuple(restored))
            return len(restored)

    def allocate_ordinals(self, count: int) -> int:
        """Reserve ``count`` rids from the monotone allocator; returns the
        first.  Transactions call this at *buffer* time so staged rows
        carry their final identity immediately (visible to the
        transaction's own reads, stable through commit).  Ordinals are
        never reused, so a rolled-back reservation is just a gap."""
        if count < 0:
            raise ValueError("cannot reserve a negative rid range")
        with self._write_lock:
            base = self._next_ordinal
            self._next_ordinal += count
            return base

    def apply_commit(
        self,
        deleted: "set[tuple[tuple[str, int], ...]]",
        staged: "list[Row]",
    ) -> TableVersion:
        """Apply one transaction's buffered writes against the *current*
        version and publish — the whole commit becomes visible in one
        publication.  Staged rows must carry rids from
        :meth:`allocate_ordinals`; the caller (the transaction manager)
        has already validated that every ``deleted`` rid is still present.
        """
        with self._write_lock:
            rows = self._version._rows
            if deleted:
                rows = tuple(r for r in rows if r.rid not in deleted)
                for index in self._live_indexes.values():
                    index.remove_rids(deleted)
            if staged:
                rows = rows + tuple(staged)
                for index in self._live_indexes.values():
                    index.insert_many(staged)
            return self._publish(rows)

    def attach_index(self, index: "Index") -> None:
        """Register a secondary index and backfill it with existing rows.

        The heap is unchanged, so the published version carries the cached
        columnar view forward — attaching an index never invalidates
        readers' column arrays.
        """
        with self._write_lock:
            if index.name in self._live_indexes:
                raise ValueError(
                    f"index {index.name!r} already exists on {self.name!r}"
                )
            current = self._version
            index.insert_many(list(current._rows))
            self._live_indexes[index.name] = index
            self._publish(current._rows, columnar=current._columnar)
