"""Heap tables.

A :class:`Table` is an append-only heap of rows with a fixed schema.  It is
the unit the catalog manages and scans read from.  Secondary indexes
(:mod:`repro.storage.index`) are registered on the table and kept in sync on
insert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from .row import Row
from .schema import Schema, SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .index import Index


class Table:
    """An in-memory heap table with secondary indexes."""

    def __init__(self, name: str, schema: Schema):
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.schema = schema.with_table(name)
        self._rows: list[Row] = []
        self._indexes: dict[str, "Index"] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)})"

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def indexes(self) -> dict[str, "Index"]:
        """Registered indexes by index name."""
        return dict(self._indexes)

    def insert(self, values: Sequence[Any]) -> Row:
        """Validate and append one row; returns the stored :class:`Row`."""
        self.schema.validate_row(values)
        row = Row.base(values, self.name, len(self._rows))
        self._rows.append(row)
        for index in self._indexes.values():
            index.insert(row)
        return row

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def insert_dicts(self, rows: Iterable[dict[str, Any]]) -> int:
        """Insert rows given as ``{column: value}`` dicts.

        Missing columns become NULL (None); unknown keys raise
        :class:`SchemaError`.
        """
        names = self.schema.column_names()
        known = set(names)
        count = 0
        for mapping in rows:
            unknown = set(mapping) - known
            if unknown:
                raise SchemaError(
                    f"unknown columns for table {self.name!r}: {sorted(unknown)}"
                )
            self.insert([mapping.get(n) for n in names])
            count += 1
        return count

    def rows(self) -> Iterator[Row]:
        """Iterate over all rows in heap (insertion) order."""
        return iter(self._rows)

    def row_at(self, ordinal: int) -> Row:
        """Fetch the row with the given heap ordinal."""
        return self._rows[ordinal]

    def attach_index(self, index: "Index") -> None:
        """Register a secondary index and backfill it with existing rows."""
        if index.name in self._indexes:
            raise ValueError(f"index {index.name!r} already exists on {self.name!r}")
        for row in self._rows:
            index.insert(row)
        self._indexes[index.name] = index

    def find_index(self, *, key: str | None = None) -> "Index | None":
        """Find an index whose leading key matches ``key`` (a column or
        predicate name), if any."""
        for index in self._indexes.values():
            if index.covers(key):
                return index
        return None
