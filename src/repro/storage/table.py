"""Heap tables.

A :class:`Table` is an append-only heap of rows with a fixed schema.  It is
the unit the catalog manages and scans read from.  Secondary indexes
(:mod:`repro.storage.index`) are registered on the table and kept in sync on
insert.

Besides the row heap, a table maintains a lazily-built *columnar view*
(:meth:`Table.columns`): one Python list per column, parallel to the heap,
plus the row-id and row-object vectors.  The batched execution path
(:mod:`repro.execution.batch`) reads this view so unranked plan segments
can move whole column vectors instead of one :class:`Row` per operator
call.  The view is a cached snapshot — any insert invalidates it, and the
next :meth:`columns` call rebuilds it from the heap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from .row import Row
from .schema import Schema, SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .index import Index


@dataclass(frozen=True)
class ColumnarView:
    """An immutable columnar snapshot of a table's heap.

    ``columns[i]`` is the full vector of column ``i``'s values in heap
    order; ``rids`` and ``rows`` are the parallel identity and row-object
    vectors.  All vectors share indices with each other and with the heap
    ordinals at snapshot time.
    """

    schema: Schema
    columns: tuple[list, ...]
    rids: list[tuple[tuple[str, int], ...]]
    rows: list[Row]

    def __len__(self) -> int:
        return len(self.rows)


class Table:
    """An in-memory heap table with secondary indexes."""

    def __init__(self, name: str, schema: Schema):
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.schema = schema.with_table(name)
        self._rows: list[Row] = []
        self._indexes: dict[str, "Index"] = {}
        self._columnar: ColumnarView | None = None

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)})"

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def indexes(self) -> dict[str, "Index"]:
        """Registered indexes by index name."""
        return dict(self._indexes)

    def insert(self, values: Sequence[Any]) -> Row:
        """Validate and append one row; returns the stored :class:`Row`."""
        self.schema.validate_row(values)
        row = Row.base(values, self.name, len(self._rows))
        self._rows.append(row)
        self._columnar = None
        for index in self._indexes.values():
            index.insert(row)
        return row

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert many rows; returns the number inserted.

        The bulk path validates *every* row before touching table state, so
        a bad row leaves the table and its indexes unchanged, then extends
        the heap in one go and feeds each index a single sorted-merge batch
        (:meth:`Index.insert_many`) instead of one bisect-insert per row.
        """
        base = len(self._rows)
        staged: list[Row] = []
        for values in rows:
            self.schema.validate_row(values)
            staged.append(Row.base(values, self.name, base + len(staged)))
        if not staged:
            return 0
        self._rows.extend(staged)
        self._columnar = None
        for index in self._indexes.values():
            index.insert_many(staged)
        return len(staged)

    def insert_dicts(self, rows: Iterable[dict[str, Any]]) -> int:
        """Insert rows given as ``{column: value}`` dicts.

        Missing columns become NULL (None); unknown keys raise
        :class:`SchemaError`.
        """
        names = self.schema.column_names()
        known = set(names)
        staged: list[list[Any]] = []
        for mapping in rows:
            unknown = set(mapping) - known
            if unknown:
                raise SchemaError(
                    f"unknown columns for table {self.name!r}: {sorted(unknown)}"
                )
            staged.append([mapping.get(n) for n in names])
        return self.insert_many(staged)

    def rows(self) -> Iterator[Row]:
        """Iterate over all rows in heap (insertion) order."""
        return iter(self._rows)

    def row_at(self, ordinal: int) -> Row:
        """Fetch the row with the given heap ordinal."""
        return self._rows[ordinal]

    def columns(self) -> ColumnarView:
        """The (cached) columnar view of the heap.

        Built on first use after any insert; the returned snapshot is
        immutable and safe to share across concurrent scans.
        """
        view = self._columnar
        if view is None:
            rows = list(self._rows)
            if rows:
                vectors = tuple(list(v) for v in zip(*(r.values for r in rows)))
            else:
                vectors = tuple([] for __ in range(len(self.schema)))
            view = ColumnarView(
                schema=self.schema,
                columns=vectors,
                rids=[r.rid for r in rows],
                rows=rows,
            )
            self._columnar = view
        return view

    def attach_index(self, index: "Index") -> None:
        """Register a secondary index and backfill it with existing rows."""
        if index.name in self._indexes:
            raise ValueError(f"index {index.name!r} already exists on {self.name!r}")
        index.insert_many(self._rows)
        self._indexes[index.name] = index

    def find_index(self, *, key: str | None = None) -> "Index | None":
        """Find an index whose leading key matches ``key`` (a column or
        predicate name), if any."""
        for index in self._indexes.values():
            if index.covers(key):
                return index
        return None
