"""Pluggable fault injection for the durability layer.

Every durability-critical IO site in the WAL and checkpoint code announces
itself to a :class:`FaultInjector` before touching disk (``reach(site)``).
A test arms the injector with a *crashpoint* — a named site plus a hit
count — and the matching arrival raises :class:`InjectedCrash` instead of
performing the IO.  From that moment the injector is **crashed**: every
subsequent ``reach`` at *any* site raises too, freezing the on-disk state
exactly as a real process death would, while the in-memory process (which
a real crash would have destroyed anyway) is free to unwind.

Two sites additionally simulate *torn writes*: instead of refusing the
write outright, the injector hands back a strict prefix of the payload
bytes, the caller makes that prefix durable, and only then does the crash
fire — producing exactly the partially-persisted record a power loss in
the middle of a ``write(2)`` leaves behind.  Recovery must detect these by
checksum and truncate to the durable prefix.

:data:`CRASHPOINTS` is the registry of every named site; the crash-fuzz
campaign (:mod:`repro.verify.crash`) sweeps all of them.
"""

from __future__ import annotations

import random
import threading

#: every named crashpoint in the durability layer, in rough pipeline order.
#: ``torn: True`` sites persist a partial payload before crashing.
CRASHPOINTS: tuple[dict, ...] = (
    {"site": "wal.append.before", "torn": False,
     "doc": "before a WAL record reaches the OS at all"},
    {"site": "wal.append.torn", "torn": True,
     "doc": "mid-record: a strict prefix of the record is durable"},
    {"site": "wal.append.after", "torn": False,
     "doc": "record handed to the OS, nothing fsynced yet"},
    {"site": "wal.fsync.before", "torn": False,
     "doc": "before the WAL fsync (commit record may be in OS cache only)"},
    {"site": "wal.fsync.after", "torn": False,
     "doc": "commit durable on disk, acknowledgement never sent"},
    {"site": "wal.rotate", "torn": False,
     "doc": "during checkpoint WAL rotation (new segment created)"},
    {"site": "checkpoint.begin", "torn": False,
     "doc": "checkpoint requested, no file written yet"},
    {"site": "checkpoint.table.torn", "torn": True,
     "doc": "mid table-file write inside the checkpoint temp dir"},
    {"site": "checkpoint.tables", "torn": False,
     "doc": "all table files written and renamed, manifest untouched"},
    {"site": "checkpoint.manifest.tmp", "torn": False,
     "doc": "new manifest written to its temp name, not yet swapped"},
    {"site": "checkpoint.manifest", "torn": False,
     "doc": "manifest atomically replaced, stale files not yet deleted"},
    {"site": "checkpoint.gc", "torn": False,
     "doc": "stale checkpoint files and WAL segments deleted (complete)"},
)

#: the site names alone, for sweeping
CRASHPOINT_NAMES: tuple[str, ...] = tuple(p["site"] for p in CRASHPOINTS)

#: sites that support torn-write simulation
TORN_SITES: frozenset[str] = frozenset(
    p["site"] for p in CRASHPOINTS if p["torn"]
)


class InjectedCrash(RuntimeError):
    """A simulated process death at a named crashpoint.  Everything after
    it must treat the on-disk state as final: the injector refuses all
    further durability IO for the process's lifetime."""

    def __init__(self, site: str):
        super().__init__(f"injected crash at {site!r}")
        self.site = site


class FaultInjector:
    """Arms one crashpoint and freezes the disk once it fires.

    ``arm(site, hits=n)`` makes the ``n``-th arrival at ``site`` crash;
    until then arrivals just count (``hits_seen``).  Thread-safe — the
    durability layer calls ``reach`` from commit, checkpoint and rotation
    paths concurrently.
    """

    def __init__(self, seed: int = 0):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._armed_site: "str | None" = None
        self._remaining = 0
        self.crashed = False
        self.crash_site: "str | None" = None
        #: arrivals per site (armed or not) — coverage accounting
        self.hits_seen: dict[str, int] = {}

    def __repr__(self) -> str:
        state = f"crashed at {self.crash_site!r}" if self.crashed else (
            f"armed {self._armed_site!r} in {self._remaining}"
            if self._armed_site else "idle"
        )
        return f"FaultInjector({state})"

    def arm(self, site: str, hits: int = 1) -> None:
        """Crash on the ``hits``-th arrival at ``site`` (1 = next)."""
        if site not in CRASHPOINT_NAMES:
            raise ValueError(f"unknown crashpoint {site!r}")
        if hits < 1:
            raise ValueError("hits must be >= 1")
        with self._lock:
            self._armed_site = site
            self._remaining = hits
            self.crashed = False
            self.crash_site = None

    def reach(self, site: str) -> None:
        """Announce arrival at a site; raises :class:`InjectedCrash` when
        this arrival is the armed one — or always, once crashed."""
        with self._lock:
            self.hits_seen[site] = self.hits_seen.get(site, 0) + 1
            if self.crashed:
                raise InjectedCrash(self.crash_site or site)
            if site == self._armed_site:
                self._remaining -= 1
                if self._remaining <= 0:
                    self.crashed = True
                    self.crash_site = site
                    raise InjectedCrash(site)

    def torn_prefix(self, site: str, data: bytes) -> "bytes | None":
        """Like :meth:`reach`, but for torn-capable write sites: returns
        ``None`` when the write should proceed whole, or a strict prefix
        of ``data`` the caller must persist *before* re-raising the crash
        (which the next ``reach``/``torn_prefix`` call will deliver —
        callers raise :class:`InjectedCrash` themselves after persisting).
        """
        with self._lock:
            self.hits_seen[site] = self.hits_seen.get(site, 0) + 1
            if self.crashed:
                raise InjectedCrash(self.crash_site or site)
            if site != self._armed_site:
                return None
            self._remaining -= 1
            if self._remaining > 0:
                return None
            self.crashed = True
            self.crash_site = site
            if len(data) <= 1:
                return b""
            return bytes(data[: self._rng.randint(1, len(data) - 1)])


class _NoFaults:
    """The default injector: free of charge, never crashes."""

    crashed = False
    crash_site = None

    def reach(self, site: str) -> None:
        pass

    def torn_prefix(self, site: str, data: bytes) -> None:
        return None

    def __repr__(self) -> str:
        return "NO_FAULTS"


#: shared no-op injector used whenever none is supplied
NO_FAULTS = _NoFaults()
