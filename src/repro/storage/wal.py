"""The append-only write-ahead log.

One WAL *record* is a length-prefixed, CRC-checksummed JSON payload::

    +----------------+----------------+------------------------+
    | length (u32 LE)| crc32 (u32 LE) | payload (UTF-8 JSON)   |
    +----------------+----------------+------------------------+

Payloads are transaction lifecycle events, tagged ``t``:

* ``{"t": "begin", "txn": id}`` — opens a transaction's group (read-only
  and rolled-back transactions never touch the log: the engine writes a
  writing transaction's whole group — begin, ops, commit — at commit);
* ``{"t": "insert", "txn": id, "table": name, "rows": [[ordinal,
  [values…]], …]}`` — buffered inserts with their pre-allocated rids;
* ``{"t": "delete", "txn": id, "table": name, "rids": [ordinal, …]}`` —
  rids the transaction deletes (matched against its own read view);
* ``{"t": "commit", "txn": id}`` — the durability point: once this record
  is on disk the transaction **must** survive recovery, so the engine
  persists it *before* publishing the commit in memory;
* ``{"t": "rollback", "txn": id}`` — the group is void (recovery discards
  uncommitted groups anyway; the record exists so the log reads cleanly).

The log lives in segment files ``wal.<epoch>.log``.  A checkpoint rotates
to a fresh segment (under the transaction-manager lock, so the checkpoint
snapshot contains exactly the commits of earlier segments) and stamps the
new epoch into the manifest; recovery replays every segment at or past the
manifest's epoch.  Segments older than the manifest epoch are garbage —
but harmless if a crash preserved them, since replay never reads them.

**Torn tails.**  A crash mid-append leaves a record whose length prefix,
payload bytes or checksum is incomplete.  :func:`scan_segments` detects
this (short read or CRC mismatch), yields only the durable prefix, and —
in the *last* segment only — truncates the file back to that prefix so
later appends start from a clean boundary.  A corrupt record *before* the
tail of the final segment is not a torn write but real corruption, and
raises :class:`WALError` instead of silently dropping committed data.

``fsync`` discipline: ``"commit"`` (default) fsyncs on commit records
only, ``"always"`` on every append, ``"never"`` leaves flushing to the OS
(durable against process crashes, not power loss).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from .faults import NO_FAULTS, InjectedCrash

_HEADER = struct.Struct("<II")
#: sanity bound on one record; a longer length prefix is corruption
MAX_RECORD_BYTES = 64 * 1024 * 1024

FSYNC_MODES = ("commit", "always", "never")

SEGMENT_PREFIX = "wal."
SEGMENT_SUFFIX = ".log"


class WALError(Exception):
    """Unusable log state: corruption before the tail, bad segment names,
    unknown fsync modes."""


def segment_path(directory: "str | Path", epoch: int) -> Path:
    return Path(directory) / f"{SEGMENT_PREFIX}{epoch:08d}{SEGMENT_SUFFIX}"


def list_segments(directory: "str | Path") -> list[tuple[int, Path]]:
    """All WAL segments in a directory as sorted ``(epoch, path)`` pairs."""
    out = []
    directory = Path(directory)
    if not directory.is_dir():
        return out
    for path in directory.iterdir():
        name = path.name
        if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
            continue
        middle = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
        try:
            epoch = int(middle)
        except ValueError:
            raise WALError(f"unrecognized WAL segment name: {name!r}")
        out.append((epoch, path))
    out.sort()
    return out


def encode_record(payload: dict) -> bytes:
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(data), zlib.crc32(data)) + data


def _fsync_directory(directory: Path) -> None:
    """Make a directory entry (new/renamed file) itself durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def iter_records(path: Path) -> Iterator[tuple[int, dict]]:
    """Yield ``(offset, payload)`` for every *whole, valid* record; stops
    at the first torn or corrupt one.  Use :func:`scan_segments` for the
    policy of when stopping is acceptable."""
    with open(path, "rb") as handle:
        offset = 0
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            length, crc = _HEADER.unpack(header)
            if length > MAX_RECORD_BYTES:
                return
            data = handle.read(length)
            if len(data) < length or zlib.crc32(data) != crc:
                return
            try:
                payload = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return
            yield offset, payload
            offset += _HEADER.size + length


def _durable_prefix(path: Path) -> int:
    """Byte length of the longest valid record prefix of a segment."""
    end = 0
    for offset, payload in iter_records(path):
        end = offset + len(encode_record(payload))
    return end


def scan_segments(
    directory: "str | Path",
    from_epoch: int = 0,
    truncate: bool = True,
) -> list[dict]:
    """All valid records of every segment with epoch >= ``from_epoch``.

    A torn/corrupt tail is legal only in the *last* segment (a crash can
    only have interrupted the newest appends); there it is truncated away
    (with ``truncate=True``) so the durable prefix becomes the whole file.
    Anywhere else a short segment raises :class:`WALError`.
    """
    segments = [s for s in list_segments(directory) if s[0] >= from_epoch]
    records: list[dict] = []
    for position, (epoch, path) in enumerate(segments):
        durable = _durable_prefix(path)
        size = path.stat().st_size
        if durable < size:
            if position != len(segments) - 1:
                raise WALError(
                    f"corrupt record mid-log in {path.name} (not the final "
                    f"segment): durable prefix {durable} of {size} bytes"
                )
            if truncate:
                with open(path, "rb+") as handle:
                    handle.truncate(durable)
                    handle.flush()
                    os.fsync(handle.fileno())
        for offset, payload in iter_records(path):
            if offset >= durable:
                break
            records.append(payload)
    return records


def committed_groups(records: Iterable[dict]) -> list[dict]:
    """Fold a record stream into committed transaction groups.

    Returns ``[{"txn": id, "ops": [record, …]}, …]`` in commit-record
    order — exactly the publication order of the original run.  Rolled-back
    groups and groups with no commit record (in flight at the crash) are
    discarded: *no partial transaction survives recovery*.
    """
    open_groups: dict[int, list[dict]] = {}
    committed: list[dict] = []
    for record in records:
        kind = record.get("t")
        txn = record.get("txn")
        if kind == "begin":
            open_groups[txn] = []
        elif kind in ("insert", "delete"):
            open_groups.setdefault(txn, []).append(record)
        elif kind == "commit":
            committed.append({"txn": txn, "ops": open_groups.pop(txn, [])})
        elif kind == "rollback":
            open_groups.pop(txn, None)
        else:
            raise WALError(f"unknown WAL record type: {record!r}")
    return committed


class WriteAheadLog:
    """Appender over the segment files of one database directory.

    Thread-safe: appends serialize on the internal lock.  The engine
    additionally writes each transaction's whole group (begin, ops,
    commit) under the transaction-manager lock — the same lock rotation
    takes — so one group never straddles a segment boundary and a
    checkpoint's segments always hold whole transactions.
    """

    def __init__(
        self,
        directory: "str | Path",
        epoch: "int | None" = None,
        fsync: str = "commit",
        injector: Any = NO_FAULTS,
    ):
        if fsync not in FSYNC_MODES:
            raise WALError(
                f"unknown fsync mode {fsync!r}; expected one of {FSYNC_MODES}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._injector = injector
        self._lock = threading.Lock()
        if epoch is None:
            existing = list_segments(self.directory)
            epoch = existing[-1][0] if existing else 1
        self.epoch = epoch
        self._handle = open(segment_path(self.directory, epoch), "ab")
        self.records_appended = 0

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    @property
    def lsn(self) -> tuple[int, int]:
        """The next append position as ``(epoch, byte offset)``."""
        return (self.epoch, self._handle.tell())

    def append(self, payload: dict, sync: bool = False) -> tuple[int, int]:
        """Append one record; returns its LSN.  ``sync=True`` (commit
        records) forces the fsync under the ``"commit"`` discipline."""
        inj = self._injector
        with self._lock:
            inj.reach("wal.append.before")
            encoded = encode_record(payload)
            prefix = inj.torn_prefix("wal.append.torn", encoded)
            if prefix is not None:
                # The crash interrupted write(2): persist the torn prefix
                # exactly as the disk would have, then die.
                self._handle.write(prefix)
                self._handle.flush()
                raise InjectedCrash("wal.append.torn")
            lsn = (self.epoch, self._handle.tell())
            self._handle.write(encoded)
            inj.reach("wal.append.after")
            self._handle.flush()
            if self.fsync == "always" or (sync and self.fsync == "commit"):
                inj.reach("wal.fsync.before")
                os.fsync(self._handle.fileno())
                inj.reach("wal.fsync.after")
            self.records_appended += 1
            return lsn

    # -- the record vocabulary ---------------------------------------------
    def log_begin(self, txn_id: int) -> None:
        self.append({"t": "begin", "txn": txn_id})

    def log_insert(
        self, txn_id: int, table: str, rows: "Sequence[tuple[int, Sequence[Any]]]"
    ) -> None:
        self.append(
            {
                "t": "insert",
                "txn": txn_id,
                "table": table,
                "rows": [[ordinal, list(values)] for ordinal, values in rows],
            }
        )

    def log_delete(self, txn_id: int, table: str, ordinals: Sequence[int]) -> None:
        self.append(
            {"t": "delete", "txn": txn_id, "table": table, "rids": list(ordinals)}
        )

    def log_commit(self, txn_id: int) -> None:
        """The durability point — fsynced under the default discipline."""
        self.append({"t": "commit", "txn": txn_id}, sync=True)

    def log_rollback(self, txn_id: int) -> None:
        self.append({"t": "rollback", "txn": txn_id})

    # ------------------------------------------------------------------
    # rotation (checkpointing) & lifecycle
    # ------------------------------------------------------------------
    def rotate(self) -> int:
        """Switch appends to a fresh segment; returns its epoch.

        The old segment stays on disk until the checkpoint's manifest swap
        succeeds and garbage collection removes it — recovery from a crash
        mid-checkpoint replays old + new segments in order.
        """
        with self._lock:
            self._injector.reach("wal.rotate")
            new_epoch = self.epoch + 1
            handle = open(segment_path(self.directory, new_epoch), "ab")
            handle.flush()
            os.fsync(handle.fileno())
            _fsync_directory(self.directory)
            old = self._handle
            self._handle = handle
            self.epoch = new_epoch
            old.flush()
            os.fsync(old.fileno())
            old.close()
            return new_epoch

    def remove_segments_before(self, epoch: int) -> int:
        """Delete segments older than ``epoch`` (post-checkpoint GC);
        returns how many were removed."""
        removed = 0
        for seg_epoch, path in list_segments(self.directory):
            if seg_epoch < epoch:
                self._injector.reach("checkpoint.gc")
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                if self.fsync != "never":
                    os.fsync(self._handle.fileno())
                self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
