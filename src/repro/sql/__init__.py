"""SQL front end: lexer, parser, AST, binder for the top-k dialect."""

from .ast import (
    BinaryOpNode,
    BooleanNode,
    CallNode,
    ColumnNode,
    ExpressionNode,
    LiteralNode,
    OrderTerm,
    SelectStatement,
    TableRef,
)
from .binder import Binder, BindError, bind
from .lexer import LexError, Token, TokenType, tokenize
from .parser import ParseError, Parser, parse

__all__ = [
    "BinaryOpNode",
    "BindError",
    "Binder",
    "BooleanNode",
    "CallNode",
    "ColumnNode",
    "ExpressionNode",
    "LexError",
    "LiteralNode",
    "OrderTerm",
    "ParseError",
    "Parser",
    "SelectStatement",
    "TableRef",
    "Token",
    "TokenType",
    "bind",
    "parse",
    "tokenize",
]
