"""Recursive-descent parser for the top-k SQL dialect.

Grammar (simplified)::

    select    := SELECT ('*' | column (',' column)*)
                 FROM table_ref (',' table_ref)*
                 [WHERE bool_expr]
                 [ORDER BY order_term ('+' order_term)*]
                 [LIMIT number]
    bool_expr := bool_term (OR bool_term)*
    bool_term := bool_factor (AND bool_factor)*
    bool_factor := [NOT] comparison | '(' bool_expr ')'
    comparison := additive [cmp_op additive]
    additive  := multiplicative (('+'|'-') multiplicative)*
    multiplicative := primary (('*'|'/'|'%') primary)*
    primary   := number | string | TRUE | FALSE | param | call | column
                 | '(' additive ')'
    param     := '?' | ':' name        -- bind variables; one style per statement
    order_term := [number '*'] (call | column | ...)
"""

from __future__ import annotations

from .ast import (
    BinaryOpNode,
    BooleanNode,
    CallNode,
    ColumnNode,
    ExpressionNode,
    LiteralNode,
    OrderTerm,
    ParameterNode,
    SelectStatement,
    TableRef,
)
from .lexer import Token, TokenType, tokenize

COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class ParseError(Exception):
    """Raised on syntax errors, with position information."""


class Parser:
    """One-statement recursive-descent parser."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0
        #: parameter slot keys in first-occurrence order
        self._parameters: list[str] = []
        self._parameter_style: str | None = None

    # -- token plumbing --------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word.upper()} at {token.position}, got {token.value!r}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise ParseError(f"expected {value!r} at {token.position}, got {token.value!r}")
        self._advance()

    def _accept_operator(self, *ops: str) -> str | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            self._advance()
            return token.value
        return None

    # -- entry point -------------------------------------------------------
    def parse(self) -> SelectStatement:
        statement = self._select()
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(f"trailing input at {token.position}: {token.value!r}")
        statement.parameters = tuple(self._parameters)
        return statement

    def _select(self) -> SelectStatement:
        self._expect_keyword("select")
        projection = self._projection()
        self._expect_keyword("from")
        tables = [self._table_ref()]
        while self._accept_punct(","):
            tables.append(self._table_ref())
        where = None
        if self._accept_keyword("where"):
            where = self._bool_expr()
        order_by: list[OrderTerm] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = self._order_terms()
        limit = None
        if self._accept_keyword("limit"):
            token = self._advance()
            if token.type is TokenType.PARAM:
                raise ParseError(
                    f"LIMIT does not take a parameter at {token.position}; "
                    "override the result size at execution time (run(k=...)) instead"
                )
            if token.type is not TokenType.NUMBER:
                raise ParseError(f"LIMIT needs a number at {token.position}")
            limit = int(float(token.value))
        return SelectStatement(projection, tables, where, order_by, limit)

    def _projection(self) -> list[str] | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return None
        columns = [self._column_reference()]
        while self._accept_punct(","):
            columns.append(self._column_reference())
        return columns

    def _column_reference(self) -> str:
        token = self._advance()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected column at {token.position}, got {token.value!r}")
        name = token.value
        if self._accept_punct("."):
            part = self._advance()
            if part.type is not TokenType.IDENTIFIER:
                raise ParseError(f"expected column after '.' at {part.position}")
            return f"{name}.{part.value}"
        return name

    def _table_ref(self) -> TableRef:
        token = self._advance()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected table name at {token.position}, got {token.value!r}")
        name = token.value
        alias = None
        self._accept_keyword("as")
        nxt = self._peek()
        if nxt.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name, alias)

    # -- boolean expressions -----------------------------------------------
    def _bool_expr(self) -> ExpressionNode:
        terms = [self._bool_term()]
        while self._accept_keyword("or"):
            terms.append(self._bool_term())
        if len(terms) == 1:
            return terms[0]
        return BooleanNode("or", tuple(terms))

    def _bool_term(self) -> ExpressionNode:
        factors = [self._bool_factor()]
        while self._accept_keyword("and"):
            factors.append(self._bool_factor())
        if len(factors) == 1:
            return factors[0]
        return BooleanNode("and", tuple(factors))

    def _bool_factor(self) -> ExpressionNode:
        if self._accept_keyword("not"):
            return BooleanNode("not", (self._bool_factor(),))
        saved = self.position
        if self._accept_punct("("):
            # Could be a parenthesized boolean or arithmetic expression;
            # try boolean first, fall back to comparison.
            try:
                inner = self._bool_expr()
                self._expect_punct(")")
                return inner
            except ParseError:
                self.position = saved
        return self._comparison()

    def _comparison(self) -> ExpressionNode:
        left = self._additive()
        negated = False
        if self._peek().is_keyword("not"):
            # "x NOT IN (...)" / "x NOT BETWEEN a AND b"
            saved = self.position
            self._advance()
            if self._peek().is_keyword("in") or self._peek().is_keyword("between"):
                negated = True
            else:
                self.position = saved
        if self._accept_keyword("in"):
            node = self._in_list(left)
            return BooleanNode("not", (node,)) if negated else node
        if self._accept_keyword("between"):
            node = self._between(left)
            return BooleanNode("not", (node,)) if negated else node
        op = self._accept_operator(*COMPARISON_OPS)
        if op is None:
            return left
        if op == "<>":
            op = "!="
        right = self._additive()
        return BinaryOpNode(op, left, right)

    def _in_list(self, left: ExpressionNode) -> ExpressionNode:
        """``x IN (v1, v2, ...)`` desugars to an OR of equalities."""
        self._expect_punct("(")
        values = [self._additive()]
        while self._accept_punct(","):
            values.append(self._additive())
        self._expect_punct(")")
        comparisons = tuple(BinaryOpNode("=", left, v) for v in values)
        if len(comparisons) == 1:
            return comparisons[0]
        return BooleanNode("or", comparisons)

    def _between(self, left: ExpressionNode) -> ExpressionNode:
        """``x BETWEEN lo AND hi`` desugars to ``lo <= x AND x <= hi``."""
        low = self._additive()
        self._expect_keyword("and")
        high = self._additive()
        return BooleanNode(
            "and",
            (BinaryOpNode(">=", left, low), BinaryOpNode("<=", left, high)),
        )

    # -- arithmetic -----------------------------------------------------
    def _additive(self) -> ExpressionNode:
        node = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-")
            if op is None:
                return node
            node = BinaryOpNode(op, node, self._multiplicative())

    def _multiplicative(self) -> ExpressionNode:
        node = self._primary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return node
            node = BinaryOpNode(op, node, self._primary())

    def _primary(self) -> ExpressionNode:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text.lower()) else int(text)
            return LiteralNode(value)
        if token.type is TokenType.STRING:
            self._advance()
            return LiteralNode(token.value)
        if token.is_keyword("true"):
            self._advance()
            return LiteralNode(True)
        if token.is_keyword("false"):
            self._advance()
            return LiteralNode(False)
        if token.type is TokenType.PARAM:
            return self._parameter()
        if self._accept_punct("("):
            inner = self._additive()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._identifier_expression()
        raise ParseError(f"unexpected token {token.value!r} at {token.position}")

    def _parameter(self) -> ParameterNode:
        """A bind-variable placeholder: ``?`` (ordinal) or ``:name``.

        Slot keys must be assigned *here*, not downstream: IN/BETWEEN
        desugaring duplicates the left-hand subtree, so a binder walking
        the AST would count one textual ``?`` twice.  The style-mixing
        check is duplicated in ``ParameterSlots.declare`` deliberately —
        the parser owns the error with position info for SQL input, the
        slots guard programmatic construction.
        """
        token = self._advance()
        if token.value == "?":
            style = "positional"
            key = f"?{sum(1 for k in self._parameters if k.startswith('?')) + 1}"
        else:
            style, key = "named", token.value
        if self._parameter_style is None:
            self._parameter_style = style
        elif self._parameter_style != style:
            raise ParseError(
                f"cannot mix positional (?) and named (:name) parameters "
                f"(at {token.position})"
            )
        if style == "positional" or key not in self._parameters:
            self._parameters.append(key)
        return ParameterNode(key)

    def _identifier_expression(self) -> ExpressionNode:
        name = self._advance().value
        if self._accept_punct("("):
            args: list[ExpressionNode] = []
            if not self._accept_punct(")"):
                args.append(self._additive())
                while self._accept_punct(","):
                    args.append(self._additive())
                self._expect_punct(")")
            return CallNode(name, tuple(args))
        if self._accept_punct("."):
            part = self._advance()
            if part.type is not TokenType.IDENTIFIER:
                raise ParseError(f"expected column after '.' at {part.position}")
            return ColumnNode(name, part.value)
        return ColumnNode(None, name)

    # -- ORDER BY ----------------------------------------------------------
    def _order_terms(self) -> list[OrderTerm]:
        """Additive scoring terms, or a pure product chain (``p1 * p2``).

        A product of ranking predicates selects the multiplicative
        combiner; the two cannot be mixed in one ORDER BY.
        """
        first = self._order_term()
        if first.weight == 1.0 and self._peek_operator("*"):
            factors = [first]
            while self._accept_operator("*"):
                factors.append(self._order_term())
            terms = [
                OrderTerm(f.expression, weight=1.0, combiner="product")
                for f in factors
            ]
            self._accept_keyword("desc")
            self._accept_keyword("asc")
            return terms
        terms = [first]
        while self._accept_operator("+"):
            terms.append(self._order_term())
        # Optional trailing ASC/DESC (DESC is the natural top-k direction).
        self._accept_keyword("desc")
        self._accept_keyword("asc")
        return terms

    def _peek_operator(self, op: str) -> bool:
        token = self._peek()
        return token.type is TokenType.OPERATOR and token.value == op

    def _order_term(self) -> OrderTerm:
        token = self._peek()
        weight = 1.0
        if token.type is TokenType.NUMBER:
            # weighted term: <number> '*' <expr>
            self._advance()
            weight = float(token.value)
            op = self._accept_operator("*")
            if op is None:
                raise ParseError(
                    f"expected '*' after weight at {token.position} in ORDER BY"
                )
        expression = self._primary()
        # Division/modulo bind within a term ('+'/'*' are combiner
        # separators at this level), e.g. "(p.a + p.b) / 2".
        while True:
            op = self._accept_operator("/", "%")
            if op is None:
                break
            expression = BinaryOpNode(op, expression, self._primary())
        return OrderTerm(expression, weight)


def parse(text: str) -> SelectStatement:
    """Parse a top-k SELECT statement."""
    return Parser(text).parse()
