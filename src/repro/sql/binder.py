"""Binder: semantic analysis from AST to :class:`QuerySpec`.

Resolves table names and aliases against the catalog, qualifies column
references, classifies WHERE conjuncts into single-table selections and
join conditions, and turns the ORDER BY expression into a monotone scoring
function over ranking predicates:

* ``name(args...)`` — a registered ranking predicate (the paper's
  user-defined functions, e.g. ``cheap(h.price)``);
* a bare identifier naming a registered predicate;
* a column or arithmetic expression — bound as an *expression predicate*
  with zero evaluation cost; its maximal value (needed for upper-bound
  scores) is taken from table statistics.
"""

from __future__ import annotations

from ..algebra.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    split_conjuncts,
)
from ..algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from ..optimizer.query_spec import JoinCondition, QuerySpec
from ..storage.catalog import Catalog
from .ast import (
    BinaryOpNode,
    BooleanNode,
    CallNode,
    ColumnNode,
    ExpressionNode,
    LiteralNode,
    SelectStatement,
)

#: k used when a query has ORDER BY but no LIMIT (effectively "all results").
UNBOUNDED_K = 10**9


class BindError(Exception):
    """Raised on semantic errors: unknown tables/columns/predicates."""


class Binder:
    """Binds one SELECT statement against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def bind(self, statement: SelectStatement) -> QuerySpec:
        alias_map = self._bind_tables(statement)
        tables = list(alias_map.values())
        selections: list[BooleanPredicate] = []
        join_conditions: list[JoinCondition] = []
        if statement.where is not None:
            expression = self._expression(statement.where, alias_map)
            for conjunct in split_conjuncts(expression):
                predicate = BooleanPredicate(conjunct)
                if len(predicate.tables()) >= 2:
                    join_conditions.append(JoinCondition.from_predicate(predicate))
                else:
                    selections.append(predicate)
        scoring = self._scoring(statement, alias_map)
        k = statement.limit if statement.limit is not None else UNBOUNDED_K
        projection = None
        if statement.projection is not None:
            projection = [
                self._qualify(reference, alias_map) for reference in statement.projection
            ]
        return QuerySpec(
            tables=tables,
            scoring=scoring,
            k=k,
            selections=selections,
            join_conditions=join_conditions,
            projection=projection,
        )

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def _bind_tables(self, statement: SelectStatement) -> dict[str, str]:
        """Map alias (or name) -> real table name, validating existence."""
        alias_map: dict[str, str] = {}
        for ref in statement.tables:
            if not self.catalog.has_table(ref.name):
                raise BindError(f"unknown table: {ref.name!r}")
            key = ref.effective_name
            if key in alias_map:
                raise BindError(f"duplicate table or alias: {key!r}")
            alias_map[key] = ref.name
        if len(set(alias_map.values())) != len(alias_map):
            raise BindError("self-joins are not supported (same table twice)")
        return alias_map

    # ------------------------------------------------------------------
    # scalar expressions
    # ------------------------------------------------------------------
    def _qualify(self, reference: str, alias_map: dict[str, str]) -> str:
        """Resolve a column reference to its qualified ``table.column``."""
        if "." in reference:
            prefix, __, column = reference.partition(".")
            if prefix not in alias_map:
                raise BindError(f"unknown table or alias: {prefix!r}")
            table = alias_map[prefix]
            qualified = f"{table}.{column}"
            if not self.catalog.table(table).schema.has_column(qualified):
                raise BindError(f"unknown column: {reference!r}")
            return qualified
        owners = [
            table
            for table in alias_map.values()
            if self.catalog.table(table).schema.has_column(reference)
        ]
        if not owners:
            raise BindError(f"unknown column: {reference!r}")
        if len(set(owners)) > 1:
            raise BindError(f"ambiguous column: {reference!r}")
        return f"{owners[0]}.{reference}"

    def _expression(self, node: ExpressionNode, alias_map: dict[str, str]) -> Expression:
        if isinstance(node, LiteralNode):
            return Literal(node.value)
        if isinstance(node, ColumnNode):
            return ColumnRef(self._qualify(node.reference(), alias_map))
        if isinstance(node, BinaryOpNode):
            left = self._expression(node.left, alias_map)
            right = self._expression(node.right, alias_map)
            if node.op in ("+", "-", "*", "/", "%"):
                return Arithmetic(node.op, left, right)
            return Comparison(node.op, left, right)
        if isinstance(node, BooleanNode):
            return BooleanOp(
                node.op,
                [self._expression(operand, alias_map) for operand in node.operands],
            )
        if isinstance(node, CallNode):
            raise BindError(
                f"function call {node.name!r} is only allowed in ORDER BY "
                "(as a ranking predicate)"
            )
        raise BindError(f"unsupported expression node: {type(node).__name__}")

    # ------------------------------------------------------------------
    # scoring function
    # ------------------------------------------------------------------
    def _scoring(
        self, statement: SelectStatement, alias_map: dict[str, str]
    ) -> ScoringFunction:
        if not statement.order_by:
            # Non-ranking query: order by a zero-cost constant.
            constant = RankingPredicate(
                "_unordered", [], lambda: 1.0, cost=0.0, p_max=1.0
            )
            return ScoringFunction([constant])
        predicates: list[RankingPredicate] = []
        weights: list[float] = []
        for term in statement.order_by:
            predicates.append(self._order_predicate(term.expression, alias_map))
            weights.append(term.weight)
        if all(term.combiner == "product" for term in statement.order_by) and len(
            statement.order_by
        ) > 1:
            return ScoringFunction(predicates, combiner="product")
        if any(w != 1.0 for w in weights):
            return ScoringFunction(predicates, combiner="wsum", weights=weights)
        return ScoringFunction(predicates, combiner="sum")

    def _order_predicate(
        self, node: ExpressionNode, alias_map: dict[str, str]
    ) -> RankingPredicate:
        if isinstance(node, CallNode):
            if not self.catalog.has_predicate(node.name):
                raise BindError(f"unknown ranking predicate: {node.name!r}")
            return self.catalog.predicate(node.name)
        if isinstance(node, ColumnNode) and node.table is None and self.catalog.has_predicate(
            node.name
        ):
            return self.catalog.predicate(node.name)
        # Expression predicate (e.g. a raw column, or (200 - h.price) * 0.2).
        expression = self._expression(node, alias_map)
        return self._expression_predicate(expression)

    def _expression_predicate(self, expression: Expression) -> RankingPredicate:
        name = f"expr:{expression!r}"
        if self.catalog.has_predicate(name):
            return self.catalog.predicate(name)
        p_max = self._expression_maximum(expression)
        predicate = RankingPredicate(
            name, sorted(expression.references()), expression, cost=0.0, p_max=p_max
        )
        self.catalog.register_predicate(predicate)
        return predicate

    def _expression_maximum(self, expression: Expression) -> float:
        """Upper bound of an expression predicate, from column statistics.

        Falls back to 1.0 (the paper's normalized-score assumption) when no
        statistic is available.
        """
        references = expression.references()
        if isinstance(expression, ColumnRef):
            table, __, column = expression.name.partition(".")
            stats = self.catalog.stats(table).column(column)
            if stats and isinstance(stats.max_value, (int, float)):
                return max(float(stats.max_value), 1e-9)
            return 1.0
        # For compound expressions, conservatively sum component maxima.
        total = 0.0
        for reference in sorted(references):
            table, __, column = reference.partition(".")
            stats = self.catalog.stats(table).column(column)
            if stats and isinstance(stats.max_value, (int, float)):
                total += abs(float(stats.max_value))
            else:
                total += 1.0
        return max(total, 1.0)


def bind(statement: SelectStatement, catalog: Catalog) -> QuerySpec:
    """Bind a parsed statement against a catalog."""
    return Binder(catalog).bind(statement)
