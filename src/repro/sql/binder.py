"""Binder: semantic analysis from AST to :class:`QuerySpec`.

Resolves table names and aliases against the catalog, qualifies column
references, classifies WHERE conjuncts into single-table selections and
join conditions, and turns the ORDER BY expression into a monotone scoring
function over ranking predicates:

* ``name(args...)`` — a registered ranking predicate (the paper's
  user-defined functions, e.g. ``cheap(h.price)``);
* a bare identifier naming a registered predicate;
* a column or arithmetic expression — bound as an *expression predicate*
  with zero evaluation cost; its maximal value (needed for upper-bound
  scores) is taken from table statistics.

Bind-variable placeholders (``?`` / ``:name``) become
:class:`~repro.algebra.parameters.Parameter` expressions sharing one
:class:`~repro.algebra.parameters.ParameterSlots` object per statement,
attached to the resulting spec — the foundation of template-level plan
reuse.  Parameters are allowed anywhere in WHERE (selections and join
conditions) but not in ORDER BY scoring expressions, whose maxima must be
statically known for the ranking principle's upper bounds.
"""

from __future__ import annotations

from ..algebra.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    split_conjuncts,
)
from ..algebra.parameters import Parameter, ParameterSlots
from ..algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from ..optimizer.query_spec import JoinCondition, QuerySpec
from ..storage.catalog import Catalog
from ..storage.schema import DataType
from .ast import (
    BinaryOpNode,
    BooleanNode,
    CallNode,
    ColumnNode,
    ExpressionNode,
    LiteralNode,
    ParameterNode,
    SelectStatement,
)

#: k used when a query has ORDER BY but no LIMIT (effectively "all results").
UNBOUNDED_K = 10**9


class BindError(Exception):
    """Raised on semantic errors: unknown tables/columns/predicates."""


class Binder:
    """Binds one SELECT statement against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        #: per-statement bind-variable slots, rebuilt by every bind() call
        self._slots = ParameterSlots()

    def bind(self, statement: SelectStatement) -> QuerySpec:
        self._slots = ParameterSlots()
        for key in statement.parameters:
            self._slots.declare(key)
        alias_map = self._bind_tables(statement)
        tables = list(alias_map.values())
        selections: list[BooleanPredicate] = []
        join_conditions: list[JoinCondition] = []
        if statement.where is not None:
            expression = self._expression(statement.where, alias_map)
            for conjunct in split_conjuncts(expression):
                predicate = BooleanPredicate(conjunct)
                if len(predicate.tables()) >= 2:
                    join_conditions.append(JoinCondition.from_predicate(predicate))
                else:
                    selections.append(predicate)
        scoring = self._scoring(statement, alias_map)
        k = statement.limit if statement.limit is not None else UNBOUNDED_K
        projection = None
        if statement.projection is not None:
            projection = [
                self._qualify(reference, alias_map) for reference in statement.projection
            ]
        return QuerySpec(
            tables=tables,
            scoring=scoring,
            k=k,
            selections=selections,
            join_conditions=join_conditions,
            projection=projection,
            parameters=self._slots if self._slots else None,
        )

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def _bind_tables(self, statement: SelectStatement) -> dict[str, str]:
        """Map alias (or name) -> real table name, validating existence."""
        alias_map: dict[str, str] = {}
        for ref in statement.tables:
            if not self.catalog.has_table(ref.name):
                raise BindError(f"unknown table: {ref.name!r}")
            key = ref.effective_name
            if key in alias_map:
                raise BindError(f"duplicate table or alias: {key!r}")
            alias_map[key] = ref.name
        if len(set(alias_map.values())) != len(alias_map):
            raise BindError("self-joins are not supported (same table twice)")
        return alias_map

    # ------------------------------------------------------------------
    # scalar expressions
    # ------------------------------------------------------------------
    def _qualify(self, reference: str, alias_map: dict[str, str]) -> str:
        """Resolve a column reference to its qualified ``table.column``."""
        if "." in reference:
            prefix, __, column = reference.partition(".")
            if prefix not in alias_map:
                raise BindError(f"unknown table or alias: {prefix!r}")
            table = alias_map[prefix]
            qualified = f"{table}.{column}"
            if not self.catalog.table(table).schema.has_column(qualified):
                raise BindError(f"unknown column: {reference!r}")
            return qualified
        owners = [
            table
            for table in alias_map.values()
            if self.catalog.table(table).schema.has_column(reference)
        ]
        if not owners:
            raise BindError(f"unknown column: {reference!r}")
        if len(set(owners)) > 1:
            raise BindError(f"ambiguous column: {reference!r}")
        return f"{owners[0]}.{reference}"

    def _expression(self, node: ExpressionNode, alias_map: dict[str, str]) -> Expression:
        if isinstance(node, LiteralNode):
            return Literal(node.value)
        if isinstance(node, ParameterNode):
            return Parameter(self._slots.declare(node.key), self._slots)
        if isinstance(node, ColumnNode):
            return ColumnRef(self._qualify(node.reference(), alias_map))
        if isinstance(node, BinaryOpNode):
            left = self._expression(node.left, alias_map)
            right = self._expression(node.right, alias_map)
            if node.op in ("+", "-", "*", "/", "%"):
                self._expect_parameter_types(left, right, arithmetic=True)
                return Arithmetic(node.op, left, right)
            self._expect_parameter_types(left, right, arithmetic=False)
            return Comparison(node.op, left, right)
        if isinstance(node, BooleanNode):
            return BooleanOp(
                node.op,
                [self._expression(operand, alias_map) for operand in node.operands],
            )
        if isinstance(node, CallNode):
            raise BindError(
                f"function call {node.name!r} is only allowed in ORDER BY "
                "(as a ranking predicate)"
            )
        raise BindError(f"unsupported expression node: {type(node).__name__}")

    def _expect_parameter_types(
        self, left: Expression, right: Expression, arithmetic: bool
    ) -> None:
        """Infer expected binding types for parameters from their context.

        A parameter compared against a column expects that column's type;
        one compared against arithmetic, or used inside arithmetic, expects
        a number; one compared against a literal expects that literal's
        type.  Violations surface as clear
        :class:`~repro.algebra.parameters.ParameterError`\\ s at bind time
        instead of raw ``TypeError``\\ s from deep inside planning or
        execution.
        """
        for parameter, other in ((left, right), (right, left)):
            if not isinstance(parameter, Parameter):
                continue
            if arithmetic or isinstance(other, Arithmetic):
                self._slots.expect(parameter.key, DataType.FLOAT)
            elif isinstance(other, ColumnRef):
                table, __, __column = other.name.partition(".")
                dtype = self.catalog.table(table).schema.column(other.name).dtype
                if dtype is DataType.INT:
                    # Comparisons against INT columns accept any number
                    # (`stars >= 2.5` is fine); only number-vs-text and
                    # number-vs-bool mixups are errors.
                    dtype = DataType.FLOAT
                self._slots.expect(parameter.key, dtype)
            elif isinstance(other, Literal) and other.value is not None:
                dtype = DataType.infer(other.value)
                if dtype is DataType.INT:
                    dtype = DataType.FLOAT
                self._slots.expect(parameter.key, dtype)

    # ------------------------------------------------------------------
    # scoring function
    # ------------------------------------------------------------------
    def _scoring(
        self, statement: SelectStatement, alias_map: dict[str, str]
    ) -> ScoringFunction:
        if not statement.order_by:
            # Non-ranking query: order by a zero-cost constant.
            constant = RankingPredicate(
                "_unordered", [], lambda: 1.0, cost=0.0, p_max=1.0
            )
            return ScoringFunction([constant])
        predicates: list[RankingPredicate] = []
        weights: list[float] = []
        for term in statement.order_by:
            predicates.append(self._order_predicate(term.expression, alias_map))
            weights.append(term.weight)
        if all(term.combiner == "product" for term in statement.order_by) and len(
            statement.order_by
        ) > 1:
            return ScoringFunction(predicates, combiner="product")
        if any(w != 1.0 for w in weights):
            return ScoringFunction(predicates, combiner="wsum", weights=weights)
        return ScoringFunction(predicates, combiner="sum")

    def _order_predicate(
        self, node: ExpressionNode, alias_map: dict[str, str]
    ) -> RankingPredicate:
        if _contains_parameter(node):
            raise BindError(
                "parameters are not supported in ORDER BY scoring expressions: "
                "the optimizer's upper-bound pruning (Property 1) needs "
                "statically known score maxima; register a ranking predicate "
                "or inline the constant instead"
            )
        if isinstance(node, CallNode):
            if not self.catalog.has_predicate(node.name):
                raise BindError(f"unknown ranking predicate: {node.name!r}")
            return self.catalog.predicate(node.name)
        if isinstance(node, ColumnNode) and node.table is None and self.catalog.has_predicate(
            node.name
        ):
            return self.catalog.predicate(node.name)
        # Expression predicate (e.g. a raw column, or (200 - h.price) * 0.2).
        expression = self._expression(node, alias_map)
        return self._expression_predicate(expression)

    def _expression_predicate(self, expression: Expression) -> RankingPredicate:
        name = f"expr:{expression!r}"
        if self.catalog.has_predicate(name):
            return self.catalog.predicate(name)
        p_max = self._expression_maximum(expression)
        predicate = RankingPredicate(
            name, sorted(expression.references()), expression, cost=0.0, p_max=p_max
        )
        self.catalog.register_predicate(predicate)
        return predicate

    def _expression_maximum(self, expression: Expression) -> float:
        """Upper bound of an expression predicate, from column statistics.

        Falls back to 1.0 (the paper's normalized-score assumption) when no
        statistic is available.
        """
        references = expression.references()
        if isinstance(expression, ColumnRef):
            table, __, column = expression.name.partition(".")
            stats = self.catalog.stats(table).column(column)
            if stats and isinstance(stats.max_value, (int, float)):
                return max(float(stats.max_value), 1e-9)
            return 1.0
        # For compound expressions, conservatively sum component maxima.
        total = 0.0
        for reference in sorted(references):
            table, __, column = reference.partition(".")
            stats = self.catalog.stats(table).column(column)
            if stats and isinstance(stats.max_value, (int, float)):
                total += abs(float(stats.max_value))
            else:
                total += 1.0
        return max(total, 1.0)


def _contains_parameter(node: ExpressionNode) -> bool:
    """Whether an AST expression contains a bind-variable placeholder."""
    if isinstance(node, ParameterNode):
        return True
    if isinstance(node, BinaryOpNode):
        return _contains_parameter(node.left) or _contains_parameter(node.right)
    if isinstance(node, BooleanNode):
        return any(_contains_parameter(operand) for operand in node.operands)
    if isinstance(node, CallNode):
        return any(_contains_parameter(argument) for argument in node.args)
    return False


def bind(statement: SelectStatement, catalog: Catalog) -> QuerySpec:
    """Bind a parsed statement against a catalog."""
    return Binder(catalog).bind(statement)
