"""Lexer for the RankSQL top-k dialect.

Tokenizes the PostgreSQL-flavoured syntax the paper uses::

    SELECT * FROM Hotel h, Restaurant r
    WHERE c1 AND h.price + r.price < 100
    ORDER BY cheap(h.price) + close(h.addr, r.addr)
    LIMIT 5
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    #: bind-variable placeholder: ``?`` (value "?") or ``:name`` (value ":name")
    PARAM = "param"
    EOF = "eof"


KEYWORDS = {
    "select",
    "from",
    "where",
    "order",
    "by",
    "limit",
    "and",
    "or",
    "not",
    "as",
    "asc",
    "in",
    "between",
    "desc",
    "true",
    "false",
}

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION = (",", "(", ")", ".")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.lower()


class LexError(Exception):
    """Raised on unrecognized input."""


def tokenize(text: str) -> list[Token]:
    """Tokenize a query string; always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", i))
            i += 1
            continue
        if ch == ":":
            j = i + 1
            if j < n and (text[j].isalpha() or text[j] == "_"):
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(Token(TokenType.PARAM, text[i:j], i))
                i = j
                continue
            raise LexError(f"expected a parameter name after ':' at position {i}")
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise LexError(f"unterminated string literal at {i}")
            tokens.append(Token(TokenType.STRING, text[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # A dot is part of the number only if a digit follows;
                    # otherwise it's a qualifier dot (e.g. "1.x" is invalid
                    # anyway, but "t1.a" never reaches here).
                    if j + 1 < n and text[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    text[j + 1].isdigit() or text[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.lower() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.lower(), i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
