"""Abstract syntax tree for the top-k SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


# -- scalar expressions -------------------------------------------------

@dataclass(frozen=True)
class ColumnNode:
    """A (possibly table-qualified) column reference."""

    table: str | None
    name: str

    def reference(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class LiteralNode:
    """A numeric, string or Boolean constant."""

    value: object


@dataclass(frozen=True)
class ParameterNode:
    """A bind-variable placeholder: positional ``?`` or named ``:name``.

    ``key`` is the slot key — ``"?1"``, ``"?2"``, … for positional
    placeholders (ordinal by occurrence) or ``":name"`` for named ones.
    """

    key: str


@dataclass(frozen=True)
class BinaryOpNode:
    """Arithmetic or comparison binary operation."""

    op: str
    left: "ExpressionNode"
    right: "ExpressionNode"


@dataclass(frozen=True)
class BooleanNode:
    """AND / OR / NOT."""

    op: str
    operands: tuple["ExpressionNode", ...]


@dataclass(frozen=True)
class CallNode:
    """A function call — in ORDER BY, a ranking-predicate invocation."""

    name: str
    args: tuple["ExpressionNode", ...]


ExpressionNode = Union[
    ColumnNode, LiteralNode, ParameterNode, BinaryOpNode, BooleanNode, CallNode
]


# -- query structure ------------------------------------------------------

@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry: table name with optional alias."""

    name: str
    alias: str | None = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class OrderTerm:
    """One term of the ORDER BY scoring expression.

    ``weight`` supports ``0.5 * p1`` style weighted terms; ``combiner``
    records whether the terms were joined by ``+`` (sum, default) or ``*``
    (product — the paper's alternative monotone scoring function).
    """

    expression: ExpressionNode
    weight: float = 1.0
    combiner: str = "sum"


@dataclass
class SelectStatement:
    """A parsed top-k SELECT."""

    projection: list[str] | None  # None = SELECT *
    tables: list[TableRef] = field(default_factory=list)
    where: ExpressionNode | None = None
    order_by: list[OrderTerm] = field(default_factory=list)
    limit: int | None = None
    #: parameter slot keys in first-occurrence order ("?1"... or ":name")
    parameters: tuple[str, ...] = ()
