"""The plan cache: optimized physical plans keyed by query signature.

Repeated traffic (the ROADMAP's north star) re-runs the same parameterized
queries; the two-dimensional ``(SR, SP)`` DP enumeration they pay for is
identical every time.  The cache stores one :class:`CachedPlan` per
normalized signature — the chosen :class:`~repro.optimizer.plans.PlanNode`
plus the compiled-evaluator cache its executions share — with
**cost-weighted eviction** and *generation*-based invalidation: any
DDL/DML/statistics change bumps the owning planner's generation, orphaning
every cached entry at once.

Eviction weighs recency by how expensive the entry is to rebuild: the
victim minimizes ``plan_cost / age`` (an old, cheap-to-replan entry goes
before a slightly-older template whose enumeration took a hundred times
longer).  With uniform costs this degrades exactly to LRU.

The cache is **process-wide shared state** in the concurrent serving
subsystem (:mod:`repro.server`): every session of every client hits the
same instance, so all sessions reuse each other's compiled plans.  All
operations — ``get`` (which reorders and restamps), ``put`` + eviction,
and ``invalidate`` — are atomic under one internal lock; stats counters
are only ever updated while it is held, so no hit, miss or eviction is
lost and no victim is evicted twice under contention.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..algebra.predicates import ScoringFunction
from ..execution.iterator import EvaluatorCache
from ..optimizer.plans import BatchSegmentPlan, LimitPlan, PlanNode, ProjectPlan
from ..optimizer.query_spec import QuerySpec
from .signature import QuerySignature


def strip_limit(plan: PlanNode) -> PlanNode:
    """The same plan without its top-level λ_k (for cursors / larger k)."""
    if isinstance(plan, ProjectPlan) and isinstance(plan.children[0], LimitPlan):
        return ProjectPlan(plan.children[0].children[0], plan.columns)
    if isinstance(plan, LimitPlan):
        return plan.children[0]
    return plan


@dataclass
class CachedPlan:
    """One cache entry: a plan, its spec, and its shared runtime artifacts.

    ``k`` and ``scoring`` are snapshotted at prepare time — ``QuerySpec`` is
    mutable, and executing from a live ``spec.k`` would let a caller mutate
    an entry that is keyed under its original signature.
    """

    signature: QuerySignature
    spec: QuerySpec
    plan: PlanNode
    strategy: str
    evaluators: EvaluatorCache
    #: planner generation the plan was built under (stale when it differs)
    generation: int
    #: result size and scoring function as of prepare time (see above)
    k: int = 0
    scoring: ScoringFunction | None = None
    hits: int = 0
    #: the executable twin of ``plan``.  Under ``batch_execution=True``
    #: (the unconditional legacy mode) ``plan`` stays row-mode for
    #: explain/analyze and this carries the blindly-lowered twin; under
    #: ``"auto"`` the costed decision is part of the chosen plan itself and
    #: this equals ``plan``; ``None`` means row-mode execution.
    exec_plan: PlanNode | None = None
    #: per-segment row-vs-batch pricing records
    #: (:class:`~repro.optimizer.hybrid.SegmentDecision`), populated under
    #: ``batch_execution="auto"`` — what explain renders
    decisions: "list | None" = None
    #: how expensive this entry was to build (measured planning seconds) —
    #: the weight cost-aware eviction protects it with
    plan_cost: float = 0.0
    #: the DOP ceiling the plan was decided under (part of the signature;
    #: the chosen per-segment DOPs live on the BatchSegmentPlan wrappers)
    parallelism: int = 1
    #: how many of ``exec_plan``'s lowered segments carry a compiled fused
    #: function (the artifacts live on the BatchSegmentPlan wrappers; 0 =
    #: fully interpreted execution)
    compiled_segments: int = 0
    #: wall time spent generating + ``compile()``-ing those functions at
    #: prepare time — amortized across every warm execution of the entry
    compile_seconds: float = 0.0
    #: cache-clock stamp of the last touch (maintained by PlanCache)
    last_used: int = 0
    #: serializes *parameterized* executions of this entry: bind values
    #: live in the spec's shared ParameterSlots and are read during
    #: execution, so concurrent runs of one template must bind + execute
    #: atomically (non-parameterized entries never take it)
    execution_lock: "threading.Lock" = field(default_factory=threading.Lock)
    #: per-operator estimated-vs-actual row counts
    #: (:class:`~repro.observe.feedback.PlanFeedback`), built at first
    #: execution and folded into by every run — the hook the adaptive
    #: re-planning roadmap item consumes.  ``None`` until executed.
    feedback: "object | None" = None

    def regime(self) -> str:
        """The execution regime this entry runs under: ``compiled`` when
        any segment carries a fused function, ``batch@dop`` / ``batch``
        when the executable plan holds lowered segments, else ``row``.
        (Presence of ``exec_plan`` alone is not enough — under ``auto``
        it equals ``plan``, which may have stayed fully row-mode.)"""
        if self.compiled_segments:
            return "compiled"
        segments = [
            node
            for node in self.executable.walk()
            if isinstance(node, BatchSegmentPlan)
        ]
        if segments:
            dop = max(segment.dop for segment in segments)
            return f"batch@{dop}" if dop > 1 else "batch"
        return "row"

    @property
    def executable(self) -> PlanNode:
        """The plan executions should build (lowered when available)."""
        return self.exec_plan if self.exec_plan is not None else self.plan

    def executable_for(self, k: int | None) -> tuple[PlanNode, int]:
        """The executable plan and effective result size for a ``k``
        override — a ``k`` beyond the prepared LIMIT runs the
        limit-stripped twin (shared by prepared statements and server
        sessions, so the override semantics cannot drift apart)."""
        wanted = self.k if k is None else k
        plan = self.executable
        return (plan if wanted <= self.k else strip_limit(plan)), wanted


@dataclass
class PlanCacheStats:
    """Observable cache behaviour (the acceptance-criteria metrics)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """A cost-weighted LRU mapping from query signature to :class:`CachedPlan`.

    Under pressure the victim is the entry minimizing ``plan_cost / age``
    (age in cache-clock ticks since the last touch): recency still matters,
    but an expensive-to-replan template outlives many cheap entries that
    were touched slightly more recently.  Uniform plan costs reduce the
    policy to plain LRU (ties break toward the least recently used).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[QuerySignature, CachedPlan]" = OrderedDict()
        #: monotone access clock; every touch stamps the entry
        self._clock = 0
        #: guards entries, clock and stats — every public operation is
        #: atomic, so concurrent sessions can share one cache
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: QuerySignature) -> bool:
        with self._lock:
            return signature in self._entries

    def _touch(self, entry: CachedPlan) -> None:
        self._clock += 1
        entry.last_used = self._clock

    def get(self, signature: QuerySignature, generation: int) -> CachedPlan | None:
        """The live entry for a signature, or None (miss / stale).

        Only entries *older* than the caller's generation are dropped; an
        entry *newer* than it means the caller read the generation before
        a concurrent invalidation — its lookup misses, but another
        session's fresher plan must not be destroyed by it.
        """
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None or entry.generation != generation:
                if entry is not None and entry.generation < generation:
                    del self._entries[signature]  # stale: drop it eagerly
                self.stats.misses += 1
                return None
            self._entries.move_to_end(signature)
            self._touch(entry)
            self.stats.hits += 1
            entry.hits += 1
            return entry

    def put(self, entry: CachedPlan) -> None:
        """Insert an entry (newest generation wins on conflicts).

        A build that raced an invalidation arrives stale-on-arrival; it
        must not replace a fresher plan another session built meanwhile.
        """
        with self._lock:
            existing = self._entries.get(entry.signature)
            if existing is not None and existing.generation > entry.generation:
                return
            self._entries[entry.signature] = entry
            self._entries.move_to_end(entry.signature)
            self._touch(entry)
            while len(self._entries) > self.capacity:
                del self._entries[self._victim()]
                self.stats.evictions += 1

    def _victim(self) -> QuerySignature:
        """The signature to evict: minimal ``plan_cost / age``.

        Iteration runs least- to most-recently used and the comparison is
        strict, so equal scores (e.g. all-zero costs) evict the least
        recently used entry — the LRU degradation.
        """
        best_signature = None
        best_score = None
        for signature, entry in self._entries.items():
            age = max(1, self._clock - entry.last_used)
            score = entry.plan_cost / age
            if best_score is None or score < best_score:
                best_signature, best_score = signature, score
        assert best_signature is not None
        return best_signature

    def invalidate(self) -> None:
        """Drop every cached plan (schema, data or statistics changed)."""
        with self._lock:
            if self._entries:
                self._entries.clear()
            self.stats.invalidations += 1

    def entries(self) -> list[CachedPlan]:
        """Cached entries, least- to most-recently used (for inspection)."""
        with self._lock:
            return list(self._entries.values())
