"""The plan cache: optimized physical plans keyed by query signature.

Repeated traffic (the ROADMAP's north star) re-runs the same parameterized
queries; the two-dimensional ``(SR, SP)`` DP enumeration they pay for is
identical every time.  The cache stores one :class:`CachedPlan` per
normalized signature — the chosen :class:`~repro.optimizer.plans.PlanNode`
plus the compiled-evaluator cache its executions share — with LRU eviction
and *generation*-based invalidation: any DDL/DML/statistics change bumps the
owning planner's generation, orphaning every cached entry at once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..algebra.predicates import ScoringFunction
from ..execution.iterator import EvaluatorCache
from ..optimizer.plans import PlanNode
from ..optimizer.query_spec import QuerySpec
from .signature import QuerySignature


@dataclass
class CachedPlan:
    """One cache entry: a plan, its spec, and its shared runtime artifacts.

    ``k`` and ``scoring`` are snapshotted at prepare time — ``QuerySpec`` is
    mutable, and executing from a live ``spec.k`` would let a caller mutate
    an entry that is keyed under its original signature.
    """

    signature: QuerySignature
    spec: QuerySpec
    plan: PlanNode
    strategy: str
    evaluators: EvaluatorCache
    #: planner generation the plan was built under (stale when it differs)
    generation: int
    #: result size and scoring function as of prepare time (see above)
    k: int = 0
    scoring: ScoringFunction | None = None
    hits: int = 0
    #: the executable twin of ``plan``: identical shape except that maximal
    #: ``P = φ`` segments are lowered to batched columnar execution (equals
    #: ``plan`` when batch execution is off).  ``plan`` stays row-mode for
    #: explain/analyze introspection.
    exec_plan: PlanNode | None = None

    @property
    def executable(self) -> PlanNode:
        """The plan executions should build (lowered when available)."""
        return self.exec_plan if self.exec_plan is not None else self.plan


@dataclass
class PlanCacheStats:
    """Observable cache behaviour (the acceptance-criteria metrics)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """An LRU mapping from query signature to :class:`CachedPlan`."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[QuerySignature, CachedPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: QuerySignature) -> bool:
        return signature in self._entries

    def get(self, signature: QuerySignature, generation: int) -> CachedPlan | None:
        """The live entry for a signature, or None (miss / stale)."""
        entry = self._entries.get(signature)
        if entry is None or entry.generation != generation:
            if entry is not None:  # stale entry: drop it eagerly
                del self._entries[signature]
            self.stats.misses += 1
            return None
        self._entries.move_to_end(signature)
        self.stats.hits += 1
        entry.hits += 1
        return entry

    def put(self, entry: CachedPlan) -> None:
        self._entries[entry.signature] = entry
        self._entries.move_to_end(entry.signature)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every cached plan (schema, data or statistics changed)."""
        if self._entries:
            self._entries.clear()
        self.stats.invalidations += 1

    def entries(self) -> list[CachedPlan]:
        """Cached entries, least- to most-recently used (for inspection)."""
        return list(self._entries.values())
