"""Staged query planning: parse → bind → optimize → cache → prepared reuse.

This package owns everything between SQL text and an executable physical
plan.  :class:`Planner` unifies the three optimizer paths behind named
strategies; :class:`PlanCache` memoizes chosen plans by normalized query
signature; :class:`PreparedQuery` and :class:`Session` expose reuse to
clients.  See ``docs/architecture.md`` for the full lifecycle map.
"""

from .cache import CachedPlan, PlanCache, PlanCacheStats
from .planner import (
    BATCH_MODES,
    Planner,
    PlannerMetrics,
    STRATEGIES,
    normalize_batch_mode,
)
from .prepared import PreparedQuery, Session, strip_limit
from .signature import QuerySignature, plan_signature, spec_signature

__all__ = [
    "BATCH_MODES",
    "CachedPlan",
    "normalize_batch_mode",
    "PlanCache",
    "PlanCacheStats",
    "Planner",
    "PlannerMetrics",
    "PreparedQuery",
    "QuerySignature",
    "STRATEGIES",
    "Session",
    "plan_signature",
    "spec_signature",
    "strip_limit",
]
