"""Prepared statements and sessions: the client-facing reuse API.

A :class:`PreparedQuery` pins the output of the planner pipeline — spec,
physical plan, compiled evaluators — so each :meth:`PreparedQuery.run` pays
only execution.  Prepared queries survive catalog changes: every run checks
the planner generation and transparently re-plans when tables, indexes or
statistics have moved underneath it (stale plans are never executed).

A :class:`Session` carries per-client planning settings (strategy, sampling
parameters, heuristic knobs) and accumulates client-side metrics, so
request-serving code configures once and issues plain SQL afterwards.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ..execution.iterator import ExecutionContext
from ..optimizer.plans import LimitPlan, PlanNode, ProjectPlan
from ..optimizer.query_spec import QuerySpec
from .cache import CachedPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database
    from ..engine.result import Cursor, QueryResult


def strip_limit(plan: PlanNode) -> PlanNode:
    """The same plan without its top-level λ_k (for cursors / larger k)."""
    if isinstance(plan, ProjectPlan) and isinstance(plan.children[0], LimitPlan):
        return ProjectPlan(plan.children[0].children[0], plan.columns)
    if isinstance(plan, LimitPlan):
        return plan.children[0]
    return plan


class PreparedQuery:
    """A query planned once, executable many times.

    Created via :meth:`Database.prepare <repro.engine.database.Database.prepare>`
    or :meth:`Session.prepare`.  ``run(k=...)`` may override the query's
    LIMIT in either direction — a larger ``k`` executes the limit-stripped
    plan, so preparation does not fix the result size.
    """

    def __init__(
        self,
        database: "Database",
        query: "str | QuerySpec",
        strategy: str = "rank-aware",
        **knobs: Any,
    ):
        self._db = database
        self._query = query
        self._strategy = strategy
        self._knobs = dict(knobs)
        self._entry, self._hit = database.planner.prepare(
            query, strategy=strategy, **knobs
        )
        #: whether the current entry has been executed before (its first
        #: run after a cold build must not report plan_cached=True)
        self._ran = False

    # -- introspection -----------------------------------------------------
    @property
    def spec(self) -> QuerySpec:
        return self._entry.spec

    @property
    def plan(self) -> PlanNode:
        return self._entry.plan

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def from_cache(self) -> bool:
        """Whether the most recent (re-)preparation was a plan-cache hit."""
        return self._hit

    def explain(self) -> str:
        return self._refresh().plan.explain()

    # -- execution ---------------------------------------------------------
    def _refresh(self) -> CachedPlan:
        """The current entry, re-planning if the catalog moved on."""
        planner = self._db.planner
        if self._entry.generation != planner.generation:
            self._entry, self._hit = planner.prepare(
                self._query, strategy=self._strategy, **self._knobs
            )
            self._ran = False
        return self._entry

    def run(self, k: int | None = None) -> "QueryResult":
        """Execute the prepared plan, returning its top ``k`` results.

        ``QueryResult.plan_cached`` is faithful to the optimizer work this
        statement actually skipped: False exactly when the current entry was
        freshly optimized (at construction or after an invalidation) and
        this is its first execution.
        """
        entry = self._refresh()
        plan_cached = self._hit or self._ran
        self._ran = True
        wanted = entry.k if k is None else k
        plan = entry.plan if wanted <= entry.k else strip_limit(entry.plan)
        return self._db.execute(
            plan,
            entry.scoring,
            k=wanted,
            evaluators=entry.evaluators,
            plan_cached=plan_cached,
        )

    def cursor(self) -> "Cursor":
        """An incremental cursor over the prepared plan (limit stripped)."""
        from ..engine.result import Cursor

        entry = self._refresh()
        unlimited = strip_limit(entry.plan)
        context = ExecutionContext(
            self._db.catalog, entry.scoring, evaluators=entry.evaluators
        )
        context.begin_run()
        return Cursor(unlimited.build(), context, entry.scoring, unlimited)


class Session:
    """Per-client query context: fixed planning settings, shared statements.

    ``settings`` are planner knobs applied to every statement the session
    plans (``strategy``, ``sample_ratio``, ``seed``, heuristic flags …).
    Prepared statements are memoized by SQL text (LRU, at most
    ``max_statements``, so long-lived sessions issuing many distinct ad-hoc
    statements stay bounded), so ``execute`` hits the statement cache first
    and the shared plan cache second.
    """

    #: default bound on memoized prepared statements per session
    MAX_STATEMENTS = 64

    def __init__(self, database: "Database", **settings: Any):
        self._db = database
        self.strategy = settings.pop("strategy", "rank-aware")
        self.max_statements = int(settings.pop("max_statements", self.MAX_STATEMENTS))
        if self.max_statements < 1:
            raise ValueError("max_statements must be positive")
        self.settings = settings
        self._statements: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self._closed = False
        #: client-side totals across every statement this session executed
        self.queries_executed = 0
        self.rows_returned = 0
        self.simulated_cost = 0.0
        #: statement-cache hits — reuse that never reaches the plan cache
        self.statement_hits = 0

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._statements.clear()
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- statements ----------------------------------------------------------
    def prepare(self, query: "str | QuerySpec") -> PreparedQuery:
        """Prepare a statement under the session's settings (memoized)."""
        if self._closed:
            raise RuntimeError("session is closed")
        if isinstance(query, str):
            cached = self._statements.get(query)
            if cached is not None:
                self._statements.move_to_end(query)
                self.statement_hits += 1
                return cached
        prepared = PreparedQuery(
            self._db, query, strategy=self.strategy, **self.settings
        )
        if isinstance(query, str):
            self._statements[query] = prepared
            while len(self._statements) > self.max_statements:
                self._statements.popitem(last=False)
        return prepared

    def execute(self, query: "str | QuerySpec", k: int | None = None) -> "QueryResult":
        """Plan (with statement + plan caching) and execute a query."""
        result = self.prepare(query).run(k=k)
        self.queries_executed += 1
        self.rows_returned += len(result)
        self.simulated_cost += result.metrics.simulated_cost
        return result

    def cursor(self, query: "str | QuerySpec") -> "Cursor":
        """An incremental cursor under the session's settings."""
        return self.prepare(query).cursor()

    def explain(self, query: "str | QuerySpec") -> str:
        return self.prepare(query).explain()

    def summary(self) -> dict[str, float]:
        """Client-side totals (rows, statements, simulated execution cost)."""
        return {
            "queries_executed": self.queries_executed,
            "rows_returned": self.rows_returned,
            "simulated_cost": self.simulated_cost,
            "statements_cached": len(self._statements),
            "statement_hits": self.statement_hits,
        }
