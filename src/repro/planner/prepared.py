"""Prepared statements and sessions: the client-facing reuse API.

A :class:`PreparedQuery` pins the output of the planner pipeline — spec,
physical plan, compiled evaluators — so each :meth:`PreparedQuery.run` pays
only execution.  Prepared queries survive catalog changes: every run checks
the planner generation and transparently re-plans when tables, indexes or
statistics have moved underneath it (stale plans are never executed).

Parameterized statements (``?`` / ``:name`` placeholders) are prepared
*once per template*: ``run(params=...)`` injects the bindings into the
cached plan's parameter slots, so every constant reuses the same plan and
compiled evaluators.  Because the optimizer's sampling estimator needs
concrete values, a parameterized statement prepared without initial
bindings defers planning to its first ``run(params=...)`` (bind peeking).

A :class:`Session` carries per-client planning settings (strategy, sampling
parameters, heuristic knobs) and accumulates client-side metrics, so
request-serving code configures once and issues plain SQL afterwards.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ..algebra.parameters import ParameterError, bind_slots
from ..execution.iterator import ExecutionContext
from ..observe import system_tables as _system_tables
from ..optimizer.query_spec import QuerySpec
from .cache import CachedPlan, strip_limit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database
    from ..engine.result import Cursor, QueryResult

__all__ = ["PreparedQuery", "Session", "strip_limit"]


class PreparedQuery:
    """A query planned once (per template), executable many times.

    Created via :meth:`Database.prepare <repro.engine.database.Database.prepare>`
    or :meth:`Session.prepare`.  ``run(k=...)`` may override the query's
    LIMIT in either direction — a larger ``k`` executes the limit-stripped
    plan, so preparation does not fix the result size.

    For a parameterized statement, every ``run`` must supply one complete
    set of bindings (``run(params=...)``); bindings are per-run, never
    remembered between runs.  Planning happens on the first run (or at
    construction when initial ``params`` are given) using those first
    bindings as peeked values for the sampling-based cost estimates; all
    later bindings execute the same cached template plan.
    """

    def __init__(
        self,
        database: "Database",
        query: "str | QuerySpec",
        strategy: str = "rank-aware",
        params: Any = None,
        **knobs: Any,
    ):
        self._db = database
        self._query = query
        self._strategy = strategy
        self._knobs = dict(knobs)
        planner = database.planner
        spec = planner.bind(query) if isinstance(query, str) else query
        self._parameterized = bool(spec.parameters)
        self._entry: CachedPlan | None = None
        self._hit = False
        self._pending_spec: QuerySpec | None = None
        if self._parameterized and params is None:
            # Defer planning to the first run(params=...): optimizing needs
            # concrete values for the sampling estimator (bind peeking).
            self._pending_spec = spec
        else:
            self._entry, self._hit = planner.prepare(
                spec, strategy=strategy, params=params, **knobs
            )
        #: whether the current entry has been executed before (its first
        #: run after a cold build must not report plan_cached=True)
        self._ran = False

    # -- introspection -----------------------------------------------------
    @property
    def parameterized(self) -> bool:
        """Whether this statement has bind-variable placeholders."""
        return self._parameterized

    @property
    def parameter_keys(self) -> tuple[str, ...]:
        """Slot keys of the statement's placeholders, in order."""
        spec = self.spec
        return spec.parameters.keys if spec.parameters is not None else ()

    @property
    def spec(self) -> QuerySpec:
        if self._entry is not None:
            return self._entry.spec
        assert self._pending_spec is not None
        return self._pending_spec

    @property
    def plan(self) -> PlanNode:
        if self._entry is None:
            raise ParameterError(
                "parameterized statement is not planned yet; "
                "call run(params=...) or explain(params=...) first"
            )
        return self._entry.plan

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def compiled_segments(self) -> int:
        """How many of the plan's segments run as compiled fused functions
        (0 = fully interpreted, or planning still deferred)."""
        return self._entry.compiled_segments if self._entry is not None else 0

    @property
    def from_cache(self) -> bool:
        """Whether the most recent (re-)preparation was a plan-cache hit.

        False while a parameterized statement's planning is still deferred.
        """
        return self._hit

    def explain(self, params: Any = None) -> str:
        """The chosen plan, pretty-printed.

        ``params`` are required whenever (re-)planning has to happen —
        while planning is still deferred, and after a catalog change
        orphaned the cached template (re-optimization peeks the values,
        exactly like ``run``).  When supplied they are always validated
        and bound, so a warm ``explain`` gives the same feedback on
        misnamed or mistyped bindings as ``run`` would; a warm ``explain``
        without ``params`` just prints the current template plan.
        """
        entry = self._refresh(params)
        if params is not None:
            bind_slots(entry.spec.parameters, params)
        return entry.plan.explain()

    # -- execution ---------------------------------------------------------
    def _refresh(self, params: Any = None) -> CachedPlan:
        """The current entry, (re-)planning if deferred or the catalog
        moved on; ``params`` supply peek values for a cold build."""
        planner = self._db.planner
        if self._entry is None or self._entry.generation != planner.generation:
            query = self._query if self._pending_spec is None else self._pending_spec
            self._entry, self._hit = planner.prepare(
                query, strategy=self._strategy, params=params, **self._knobs
            )
            self._pending_spec = None
            self._ran = False
        return self._entry

    def run(
        self,
        k: int | None = None,
        params: Any = None,
        snapshot: Any = None,
    ) -> "QueryResult":
        """Execute the prepared plan, returning its top ``k`` results.

        ``params`` binds the statement's placeholders for this run (and is
        required, in full, on every run of a parameterized statement).

        ``snapshot`` pins the table versions the plan reads (a
        :class:`~repro.storage.snapshot.DatabaseSnapshot` or a
        transaction's read view); ``None`` reads the live catalog.

        ``QueryResult.plan_cached`` is faithful to the optimizer work this
        statement actually skipped — including for parameterized runs: it is
        False exactly when the template was freshly optimized (at
        construction, on the deferred first ``run(params=...)``, or after an
        invalidation) and this is its first execution.  A cold template
        build never reports ``plan_cached=True``, no matter how many
        bindings follow; a first run that *hits* a template another
        statement already planned does report True.
        """
        tracer = self._db.tracer
        sql = self._query if isinstance(self._query, str) else "<QuerySpec>"
        with tracer.trace(sql, surface="prepared"):
            entry = self._refresh(params)
            bind_slots(entry.spec.parameters, params)
            plan_cached = self._hit or self._ran
            self._ran = True
            plan, wanted = entry.executable_for(k)
            tracer.annotate(regime=entry.regime())
            return self._db.execute(
                plan,
                entry.scoring,
                k=wanted,
                evaluators=entry.evaluators,
                plan_cached=plan_cached,
                snapshot=snapshot,
                entry=entry,
            )

    def cursor(self, params: Any = None) -> "Cursor":
        """An incremental cursor over the prepared plan (limit stripped).

        The cursor snapshots its (validated) bindings at open and restores
        them before every fetch, so later executions of the same template —
        other ``run``/``cursor`` calls with different ``params``, including
        from unrelated statements that share the cached plan — cannot
        change an open cursor's predicates mid-stream.
        """
        from ..engine.result import Cursor

        entry = self._refresh(params)
        bind_slots(entry.spec.parameters, params)
        # Stripping the λ also strips its top-k hint, so a lowered
        # BatchSort below delivers the full ordering the cursor needs.
        unlimited = strip_limit(entry.executable)
        context = ExecutionContext(
            self._db.catalog, entry.scoring, evaluators=entry.evaluators
        )
        context.begin_run()
        return Cursor(
            unlimited.build(),
            context,
            entry.scoring,
            unlimited,
            parameters=entry.spec.parameters,
        )


class Session:
    """Per-client query context: fixed planning settings, shared statements.

    ``settings`` are planner knobs applied to every statement the session
    plans (``strategy``, ``sample_ratio``, ``seed``, heuristic flags …).
    Prepared statements are memoized by SQL text (LRU, at most
    ``max_statements``, so long-lived sessions issuing many distinct ad-hoc
    statements stay bounded), so ``execute`` hits the statement cache first
    and the shared plan cache second.

    A session may hold one open **transaction** (:meth:`begin` /
    :meth:`commit` / :meth:`rollback`).  While it is open, every
    ``execute`` reads the BEGIN-time snapshot plus the transaction's own
    buffered writes, and :meth:`insert` / :meth:`delete_where` buffer
    instead of publishing — the embedded mirror of the server-session
    surface (:class:`repro.server.session.ServerSession`).
    """

    #: default bound on memoized prepared statements per session
    MAX_STATEMENTS = 64

    def __init__(self, database: "Database", **settings: Any):
        self._db = database
        self.strategy = settings.pop("strategy", "rank-aware")
        self.max_statements = int(settings.pop("max_statements", self.MAX_STATEMENTS))
        if self.max_statements < 1:
            raise ValueError("max_statements must be positive")
        self.settings = settings
        self._statements: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self._closed = False
        #: the session's open transaction, if any (at most one)
        self.transaction = None
        #: client-side totals across every statement this session executed
        self.queries_executed = 0
        self.rows_returned = 0
        self.simulated_cost = 0.0
        #: statement-cache hits — reuse that never reaches the plan cache
        self.statement_hits = 0
        #: execution-regime split: statements whose plan carried at least
        #: one compiled fused segment vs fully interpreted ones
        self.compiled_executions = 0
        self.interpreted_executions = 0

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        transaction, self.transaction = self.transaction, None
        if transaction is not None:
            transaction.rollback()
        self._statements.clear()
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- statements ----------------------------------------------------------
    def prepare(self, query: "str | QuerySpec") -> PreparedQuery:
        """Prepare a statement under the session's settings (memoized).

        Memoization is by SQL *text*: a parameterized template prepared once
        serves every subsequent ``execute(sql, params=...)`` with fresh
        bindings — the statement cache and the shared plan cache both see
        one entry per template, not one per constant.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if isinstance(query, str):
            cached = self._statements.get(query)
            if cached is not None:
                self._statements.move_to_end(query)
                self.statement_hits += 1
                return cached
        prepared = PreparedQuery(
            self._db, query, strategy=self.strategy, **self.settings
        )
        if isinstance(query, str):
            self._statements[query] = prepared
            while len(self._statements) > self.max_statements:
                self._statements.popitem(last=False)
        return prepared

    def execute(
        self,
        query: "str | QuerySpec",
        k: int | None = None,
        params: Any = None,
    ) -> "QueryResult":
        """Plan (with statement + plan caching) and execute a query.

        ``params`` binds ``?`` / ``:name`` placeholders for this execution.
        Inside an open transaction the query reads its view (BEGIN-time
        snapshot + own buffered writes) and is logged to its event stream.
        """
        if isinstance(query, str):
            # system.* virtual tables are served by interception — they
            # must not enter the statement cache or the planner
            virtual = _system_tables.maybe_execute(
                query, self._db.tracer, self._db.registry
            )
            if virtual is not None:
                return virtual
        transaction = self.transaction if self.in_transaction else None
        snapshot = transaction.read_view() if transaction is not None else None
        prepared = self.prepare(query)
        result = prepared.run(k=k, params=params, snapshot=snapshot)
        self.queries_executed += 1
        self.rows_returned += len(result)
        self.simulated_cost += result.metrics.simulated_cost
        if prepared.compiled_segments:
            self.compiled_executions += 1
        else:
            self.interpreted_executions += 1
        if transaction is not None and transaction.active:
            transaction.record_query(
                query if isinstance(query, str) else repr(query),
                params,
                [tuple(values) for values in result.rows],
            )
        return result

    # -- transactions ------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self.transaction is not None and self.transaction.active

    def begin(self):
        """Open a transaction on this session (at most one at a time);
        returns the :class:`~repro.storage.transaction.Transaction`."""
        from ..storage.transaction import TransactionError

        if self._closed:
            raise RuntimeError("session is closed")
        if self.in_transaction:
            raise TransactionError(
                "session already has an open transaction; "
                "COMMIT or ROLLBACK it first"
            )
        self.transaction = self._db.begin()
        return self.transaction

    def commit(self) -> int:
        """Commit the open transaction; returns the commit sequence.
        Raises :class:`~repro.storage.transaction.SerializationError` on a
        first-committer-wins conflict (retry means a fresh :meth:`begin`)."""
        from ..storage.transaction import TransactionError

        transaction = self.transaction
        if transaction is None or not transaction.active:
            raise TransactionError("session has no open transaction")
        self.transaction = None
        return transaction.commit()

    def rollback(self) -> None:
        """Discard the open transaction's buffered writes (no-op when none
        is open, so cleanup paths may call it unconditionally)."""
        transaction, self.transaction = self.transaction, None
        if transaction is not None:
            transaction.rollback()

    # -- DML (transactional when a transaction is open) --------------------
    def insert(self, table: str, rows: Any) -> int:
        """Insert value tuples — buffered in the open transaction, applied
        immediately (autocommit) otherwise."""
        if self.in_transaction:
            return self.transaction.insert(self._db.catalog.table(table), rows)
        return self._db.insert(table, rows)

    def delete_where(
        self,
        table: str,
        condition: Any = None,
        *,
        column: "str | None" = None,
        equals: Any = None,
    ) -> int:
        """Delete rows — buffered in the open transaction (matched against
        its own read view), applied immediately (autocommit) otherwise."""
        if self.in_transaction:
            return self.transaction.delete_where(
                self._db.catalog.table(table),
                condition,
                column=column,
                equals=equals,
            )
        return self._db.delete_where(
            table, condition, column=column, equals=equals
        )

    def cursor(self, query: "str | QuerySpec", params: Any = None) -> "Cursor":
        """An incremental cursor under the session's settings."""
        return self.prepare(query).cursor(params=params)

    def explain(self, query: "str | QuerySpec", params: Any = None) -> str:
        return self.prepare(query).explain(params=params)

    def summary(self) -> dict[str, float]:
        """Client-side totals (rows, statements, simulated execution cost)."""
        return {
            "queries_executed": self.queries_executed,
            "rows_returned": self.rows_returned,
            "simulated_cost": self.simulated_cost,
            "statements_cached": len(self._statements),
            "statement_hits": self.statement_hits,
            "compiled_executions": self.compiled_executions,
            "interpreted_executions": self.interpreted_executions,
        }
