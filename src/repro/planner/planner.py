"""The unified planner: parse → bind → optimize behind one interface.

Before this layer existed, ``engine/database.py`` wired the SQL front end
and the three optimizers (:class:`~repro.optimizer.enumeration.RankAwareOptimizer`,
:func:`~repro.optimizer.enumeration.optimize_traditional`,
:class:`~repro.optimizer.rule_based.RuleBasedOptimizer`) together ad hoc,
re-running the full ``(SR, SP)`` DP enumeration on every ``query()`` call.
:class:`Planner` owns that pipeline as explicit stages:

1. **parse** — SQL text to AST (:mod:`repro.sql.parser`);
2. **bind** — AST to a canonical :class:`~repro.optimizer.query_spec.QuerySpec`;
3. **optimize** — spec to a physical :class:`~repro.optimizer.plans.PlanNode`
   under a named *strategy* (``rank-aware`` | ``traditional`` | ``rule-based``)
   and explicit knobs;
4. **cache** — the chosen plan, keyed by the normalized signature, together
   with its compiled-evaluator cache so warm executions skip both
   enumeration and predicate recompilation.

The planner never executes plans — that remains the engine's job — and it
never mutates the catalog beyond what binding requires.  Any change to
tables, indexes or statistics must be reported via :meth:`invalidate`,
which bumps the planner *generation* and orphans every cached artifact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..algebra.operators import LogicalOperator
from ..algebra.parameters import bind_slots
from ..observe.trace import _NULL_CONTEXT
from ..execution import morsels
from ..execution.iterator import EvaluatorCache
from ..optimizer.cardinality import SampleDatabase
from ..optimizer.cost_model import CostModel
from ..optimizer.enumeration import RankAwareOptimizer
from ..optimizer.compile import compile_plan
from ..optimizer.hybrid import decide_batch_lowering
from ..optimizer.plans import PlanNode, lower_to_batch
from ..optimizer.query_spec import QuerySpec
from ..optimizer.rule_based import RuleBasedOptimizer
from ..sql.binder import Binder
from ..sql.parser import parse
from ..storage.catalog import Catalog
from .cache import CachedPlan, PlanCache
from .signature import plan_signature

#: the optimization strategies the planner unifies
STRATEGIES = ("rank-aware", "traditional", "rule-based")

#: accepted ``batch_execution`` modes (``"auto"`` = cost-governed hybrid)
BATCH_MODES = (False, True, "auto")

#: accepted ``execution`` modes — the session-level regime selector:
#:
#: * ``"auto"`` — cost-governed: every segment is priced across all
#:   enabled regimes (row, batch at every candidate DOP, compiled) and
#:   the cheapest wins;
#: * ``"row"`` — pure tuple-at-a-time (Volcano) execution;
#: * ``"batch"`` — cost-governed row-vs-batch, compilation disabled;
#: * ``"compiled"`` — force compilation of every supported segment;
#:   unsupported shapes fall back to the interpreted batch pipeline.
EXECUTION_MODES = ("auto", "row", "batch", "compiled")


def normalize_batch_mode(mode: "bool | str") -> "bool | str":
    """Validate and normalize a ``batch_execution`` mode value."""
    if isinstance(mode, str):
        mode = mode.strip().lower()
        if mode in ("auto",):
            return "auto"
        raise ValueError(
            f"unknown batch_execution mode {mode!r}; expected one of {BATCH_MODES}"
        )
    return bool(mode)


def normalize_execution(mode: str) -> str:
    """Validate and normalize an ``execution`` mode value."""
    if isinstance(mode, str):
        text = mode.strip().lower()
        if text in EXECUTION_MODES:
            return text
    raise ValueError(
        f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
    )


def execution_mode_from_env(value: "str | None") -> "str | None":
    """Map a ``REPRO_COMPILED_EXECUTION`` environment value to an
    execution mode (``None`` when unset/empty — caller picks the default).

    Truthy spellings force compilation, falsy ones disable it while
    keeping the interpreted batch path, and any mode name passes through.
    """
    if value is None:
        return None
    text = value.strip().lower()
    if not text:
        return None
    if text in ("1", "true", "on", "always"):
        return "compiled"
    if text in ("0", "false", "off"):
        return "batch"
    if text in EXECUTION_MODES:
        return text
    raise ValueError(
        f"bad REPRO_COMPILED_EXECUTION value {value!r}; expected a boolean "
        f"spelling or one of {EXECUTION_MODES}"
    )


def normalize_parallelism(value: "int | str") -> int:
    """Validate and normalize a ``parallelism`` knob value.

    Accepts a positive integer (the maximum per-segment DOP the optimizer
    may choose) or ``"auto"`` (the machine's core count).  ``1`` means
    serial execution — the parallel regime is never priced.
    """
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return morsels.hardware_parallelism()
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"bad parallelism value {value!r}; expected a positive "
                "integer or 'auto'"
            ) from None
    value = int(value)
    if value < 1:
        raise ValueError(
            f"bad parallelism value {value!r}; expected a positive integer or 'auto'"
        )
    return value


@dataclass
class PlannerMetrics:
    """Counters over the planner's lifetime (cache stats live on the cache)."""

    binds: int = 0
    plans_built: int = 0
    prepares: int = 0
    invalidations: int = 0
    plan_seconds: float = 0.0
    #: plans built with at least one compiled (fused-function) segment
    plans_compiled: int = 0
    #: cumulative wall time spent generating + compiling fused functions
    compile_seconds: float = 0.0
    by_strategy: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict[str, float]:
        return {
            "binds": self.binds,
            "plans_built": self.plans_built,
            "prepares": self.prepares,
            "invalidations": self.invalidations,
            "plan_seconds": self.plan_seconds,
            "plans_compiled": self.plans_compiled,
            "compile_seconds": self.compile_seconds,
        }


class Planner:
    """The staged query-planning pipeline over one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        cache_capacity: int = 256,
        batch_execution: "bool | str" = "auto",
        parallelism: "int | str" = 1,
        execution: str = "auto",
        tracer: Any = None,
    ):
        self.catalog = catalog
        self.cache = PlanCache(cache_capacity)
        #: the owning engine's :class:`~repro.observe.trace.Tracer`, when
        #: one is attached — the planner reports parse/bind/optimize/
        #: compile spans and cache hit/miss into the active query trace.
        self.tracer = tracer
        #: how unranked (``P = φ``) plan segments reach the batched
        #: columnar path:
        #:
        #: * ``"auto"`` (default) — a costed optimizer decision: the DP
        #:   prices BatchSegmentPlan alternatives per segment and the
        #:   decision pass records both candidates' costs;
        #: * ``True`` — the legacy unconditional post-pass
        #:   (:func:`repro.optimizer.plans.lower_to_batch`), every segment
        #:   lowers regardless of size;
        #: * ``False`` — pure tuple-at-a-time (Volcano) execution.
        self.batch_execution = normalize_batch_mode(batch_execution)
        #: maximum per-segment degree of parallelism the optimizer may
        #: choose (1 = serial; "auto" resolved to the core count at
        #: construction).  Overridable per statement via the
        #: ``parallelism=`` prepare knob.
        self.parallelism = normalize_parallelism(parallelism)
        #: session-level execution regime selector (see EXECUTION_MODES).
        #: ``"auto"`` defers to ``batch_execution`` for the batch dimension
        #: and prices compilation whenever the costed hybrid pass runs;
        #: the explicit modes override both.  Overridable per statement
        #: via the ``execution=`` prepare knob.
        self.execution = normalize_execution(execution)
        self.metrics = PlannerMetrics()
        #: bumped on every invalidation; cached artifacts carry the value
        #: they were built under and are stale once it moves on
        self.generation = 0
        self._sample_cache: dict[tuple[float, int], SampleDatabase] = {}
        #: guards generation bumps, the sample cache and metric counters —
        #: the planner is shared by every concurrent session of a served
        #: database, so its bookkeeping must be race-free.  Optimization
        #: itself (the expensive part) runs outside the lock; two sessions
        #: missing on the same signature may both plan it, and the second
        #: ``cache.put`` simply wins — wasted work, never corruption.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # front end
    # ------------------------------------------------------------------
    def _span(self, name: str, **attrs: Any):
        """A tracing span under the active query trace (no-op context
        manager when no tracer is attached or no trace is active)."""
        if self.tracer is None:
            return _NULL_CONTEXT
        return self.tracer.span(name, **attrs)

    def bind(self, sql: str) -> QuerySpec:
        """Parse and bind a SQL string to a canonical query spec."""
        with self._lock:
            self.metrics.binds += 1
        with self._span("parse"):
            ast = parse(sql)
        with self._span("bind"):
            return Binder(self.catalog).bind(ast)

    def _resolve(self, query: "str | QuerySpec") -> QuerySpec:
        return self.bind(query) if isinstance(query, str) else query

    def resolve_execution(self, execution: str) -> "tuple[bool | str, str]":
        """Resolve an execution mode to ``(batch_mode, compiled_mode)``.

        ``batch_mode`` feeds the existing row-vs-batch machinery (a
        BATCH_MODES value); ``compiled_mode`` governs the compilation
        regime (``"off"`` / ``"auto"`` / ``"always"``).  Compilation is
        only priced when the costed hybrid pass runs (``batch_mode ==
        "auto"``): the legacy unconditional and pure-row paths have no
        decision records to attach a third regime to.
        """
        execution = normalize_execution(execution)
        if execution == "row":
            return False, "off"
        if execution == "batch":
            return "auto", "off"
        if execution == "compiled":
            return "auto", "always"
        batch_mode = self.batch_execution
        return batch_mode, "auto" if batch_mode == "auto" else "off"

    # ------------------------------------------------------------------
    # samples (shared by every optimizer; data-dependent, so invalidated)
    # ------------------------------------------------------------------
    def sample(self, ratio: float, seed: int) -> SampleDatabase:
        """The (cached) sample database for a ``(ratio, seed)`` pair."""
        key = (ratio, seed)
        with self._lock:
            sample = self._sample_cache.get(key)
            if sample is None:
                sample = SampleDatabase(self.catalog, ratio=ratio, seed=seed)
                self._sample_cache[key] = sample
            return sample

    # ------------------------------------------------------------------
    # optimization
    # ------------------------------------------------------------------
    def optimizer(
        self,
        spec: QuerySpec,
        sample_ratio: float = 0.001,
        seed: int = 0,
        **knobs: Any,
    ) -> RankAwareOptimizer:
        """A rank-aware optimizer instance for a spec (for inspection)."""
        return RankAwareOptimizer(
            self.catalog, spec, sample=self.sample(sample_ratio, seed), **knobs
        )

    def plan(
        self,
        query: "str | QuerySpec",
        strategy: str = "rank-aware",
        use_cache: bool = True,
        params: Any = None,
        **knobs: Any,
    ) -> PlanNode:
        """Optimize a query under a strategy; returns the physical plan."""
        return self.prepare(
            query, strategy=strategy, use_cache=use_cache, params=params, **knobs
        )[0].plan

    def prepare(
        self,
        query: "str | QuerySpec",
        strategy: str = "rank-aware",
        use_cache: bool = True,
        params: Any = None,
        bind: bool = True,
        **knobs: Any,
    ) -> tuple[CachedPlan, bool]:
        """The full staged pipeline; returns ``(entry, was_cache_hit)``.

        SQL strings always pass through parse + bind (the cheap stages; the
        signature is computed from the bound spec).  On a hit, everything
        after — the DP enumeration and predicate compilation — is skipped:
        the entry carries the chosen plan and the compiled-evaluator cache
        shared by all of its executions.

        ``params`` are the bind-variable values for parameterized queries.
        The signature never covers them, so every binding of one template
        shares a single cache entry; on a hit the values are written into
        the *entry's* parameter slots (the ones its compiled evaluators
        read).  On a miss they also serve as *peeked* values: the
        sampling-based cardinality estimator evaluates predicates during
        enumeration, so the first binding shapes the template plan — later
        bindings reuse it unchanged (standard bind-peeking semantics;
        correctness never depends on the peeked values, only plan quality).
        A parameterized query prepared without ``params`` raises
        :class:`~repro.algebra.parameters.ParameterError`.

        ``bind=False`` skips installing ``params`` into a cache *hit*'s
        shared parameter slots: the concurrent serving layer defers that
        bind until it holds the entry's ``execution_lock``, so one
        template's interleaved executions cannot overwrite each other's
        values mid-run.  A cache *miss* still bind-peeks ``params`` — the
        freshly-built entry is not visible to any other thread until it is
        put into the cache, so that bind cannot race.
        """
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        with self._lock:
            self.metrics.prepares += 1
            # One generation read serves the whole prepare: an invalidation
            # racing with this build just makes the entry stale-on-arrival
            # (dropped by the next get), never wrongly fresh.
            generation = self.generation
        spec = self._resolve(query)
        sample_ratio = float(knobs.pop("sample_ratio", 0.001))
        seed = int(knobs.pop("seed", 0))
        # Popped before the optimizer sees the knobs (the enumerators do
        # not take it) but folded into the signature: plans decided at
        # different DOP ceilings are different plans.
        parallelism = normalize_parallelism(
            knobs.pop("parallelism", self.parallelism)
        )
        # Also popped-and-signed: plans decided under different execution
        # regimes are different plans (a compiled entry must never serve a
        # row-mode session and vice versa).
        execution = normalize_execution(knobs.pop("execution", self.execution))
        batch_mode, compiled_mode = self.resolve_execution(execution)
        signature = plan_signature(
            spec,
            strategy,
            dict(
                knobs,
                sample_ratio=sample_ratio,
                seed=seed,
                parallelism=parallelism,
                execution=execution,
            ),
        )
        if self.tracer is not None:
            # compact, process-stable correlation key (the full signature
            # tuple is an implementation detail and unreadable in logs)
            self.tracer.annotate(signature=f"sig:{abs(hash(signature)):012x}")
        if use_cache:
            entry = self.cache.get(signature, generation)
            if entry is not None:
                if bind:
                    bind_slots(entry.spec.parameters, params)
                if self.tracer is not None:
                    self.tracer.annotate(cache="hit")
                return entry, True
        if self.tracer is not None:
            self.tracer.annotate(cache="miss")
        bind_slots(spec.parameters, params)
        start = time.perf_counter()
        with self._span("optimize", strategy=strategy):
            plan, cost_model = self._optimize(
                spec, strategy, sample_ratio, seed, batch_mode, knobs
            )
        decisions = None
        compiled_segments = 0
        compile_seconds = 0.0
        if batch_mode == "auto":
            # Cost-governed hybrid execution: lower each maximal P = φ
            # segment iff the batch regime prices cheaper.  Plans from the
            # DP (rank-aware / traditional strategies) already embed the
            # decision; the pass re-prices those wrappers for the record
            # and decides any segment the DP did not see (rule-based
            # plans, post-DP λ/π tops).
            with self._span("lower"):
                plan, decisions = decide_batch_lowering(
                    plan, cost_model, max_dop=parallelism, compiled_mode=compiled_mode
                )
            exec_plan: PlanNode | None = plan
            if compiled_mode != "off":
                # Plan-to-code compilation: stamp a fused function onto
                # every lowered segment whose decision elected the
                # compiled regime.  Happens once, at prepare time — every
                # warm execution of this cached entry reuses the artifact.
                with self._span("compile"):
                    compiled_segments, compile_seconds = compile_plan(
                        exec_plan, self.catalog, spec.scoring, mode=compiled_mode
                    )
        elif batch_mode:
            with self._span("lower"):
                exec_plan = lower_to_batch(plan, parallelism=parallelism)
        else:
            exec_plan = None
        elapsed = time.perf_counter() - start
        with self._lock:
            self.metrics.plan_seconds += elapsed
            self.metrics.plans_built += 1
            if compiled_segments:
                self.metrics.plans_compiled += 1
                self.metrics.compile_seconds += compile_seconds
            self.metrics.by_strategy[strategy] = (
                self.metrics.by_strategy.get(strategy, 0) + 1
            )
        entry = CachedPlan(
            signature=signature,
            spec=spec,
            plan=plan,
            strategy=strategy,
            evaluators=EvaluatorCache(spec.scoring),
            generation=generation,
            k=spec.k,
            scoring=spec.scoring,
            exec_plan=exec_plan,
            decisions=decisions,
            plan_cost=elapsed,
            parallelism=parallelism,
            compiled_segments=compiled_segments,
            compile_seconds=compile_seconds,
        )
        if use_cache:
            self.cache.put(entry)
        return entry, False

    def _optimize(
        self,
        spec: QuerySpec,
        strategy: str,
        sample_ratio: float,
        seed: int,
        batch_mode: "bool | str",
        knobs: dict[str, Any],
    ) -> tuple[PlanNode, CostModel]:
        """Run the strategy's optimizer; returns the plan *and* the cost
        model that priced it (the hybrid decision pass reuses it, so
        row-vs-batch is judged by the same model that chose the plan)."""
        sample = self.sample(sample_ratio, seed)
        # Under "auto", the DP itself prices BatchSegmentPlan alternatives
        # per signature — batch lowering becomes a fourth enumeration
        # decision instead of a post-pass rewrite.
        dp_batch = "auto" if batch_mode == "auto" else False
        if strategy == "rank-aware":
            optimizer = RankAwareOptimizer(
                self.catalog, spec, sample=sample, batch_execution=dp_batch, **knobs
            )
            return optimizer.optimize(), optimizer.cost_model
        if strategy == "traditional":
            if knobs:
                raise TypeError(
                    f"traditional strategy takes no knobs, got {sorted(knobs)}"
                )
            optimizer = RankAwareOptimizer(
                self.catalog,
                spec,
                sample=sample,
                enumerate_ranking=False,
                batch_execution=dp_batch,
            )
            return optimizer.optimize(), optimizer.cost_model
        rule_based = RuleBasedOptimizer(self.catalog, spec, sample=sample, **knobs)
        return rule_based.optimize(), rule_based.cost_model

    def plan_logical(
        self,
        logical: LogicalOperator,
        spec: QuerySpec,
        sample_ratio: float = 0.001,
        seed: int = 0,
        **knobs: Any,
    ) -> PlanNode:
        """Optimize a hand-built logical plan (rule-based path, uncached —
        logical trees carry no normalized signature)."""
        start = time.perf_counter()
        optimizer = RuleBasedOptimizer(
            self.catalog, spec, sample=self.sample(sample_ratio, seed), **knobs
        )
        plan = optimizer.optimize(logical=logical)
        self.metrics.plan_seconds += time.perf_counter() - start
        self.metrics.plans_built += 1
        return plan

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Orphan every cached plan and sample (schema/data/stats changed)."""
        with self._lock:
            self.generation += 1
            self.metrics.invalidations += 1
            self._sample_cache.clear()
        self.cache.invalidate()
