"""Normalized query signatures: the plan-cache key.

Two queries share a signature exactly when a physical plan chosen for one
is a valid (and equally good, under identical optimizer knobs) plan for the
other.  The signature therefore covers every input the optimizer reads:

* the relation set (order-normalized — enumeration considers all orders);
* single-table Boolean selections (name ≡ canonical expression repr, cost);
* the join graph (condition expression, connected tables, equi-keys);
* the scoring function (combiner, weights, per-predicate name/cost/p_max —
  declaration order matters because weights are positional);
* ``k`` and the projection list;
* the parameter *structure* — slot keys of ``?`` / ``:name`` placeholders.
  Bound values are deliberately excluded: bindings change executions, not
  plans, which is exactly what lets one cached template plan serve every
  constant (template reuse);
* the optimizer strategy and knob values (heuristic flags, threshold mode,
  sampling parameters).

Anything *data*-dependent (table contents, statistics, available indexes)
is deliberately excluded: data changes don't change the key, they
invalidate the cache (see :class:`~repro.planner.cache.PlanCache`).
"""

from __future__ import annotations

from ..algebra.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
)
from ..algebra.parameters import Parameter
from ..optimizer.query_spec import QuerySpec

#: a hashable, comparison-stable cache key
QuerySignature = tuple


def expression_key(expression: Expression) -> tuple:
    """A hashable token identifying an expression's *behaviour*.

    ``repr()`` is not enough: :class:`FunctionCall` renders only its display
    name, so two filters wrapping different callables would collide.  This
    walk keys calls (and any unknown node kind) by object identity — safe
    because every live signature is held by a cache entry that also holds
    the expression, so ids cannot be recycled into a false match.  Identity
    keys can only cause false *misses* (a re-plan), never wrong results.
    """
    if isinstance(expression, ColumnRef):
        return ("col", expression.name)
    if isinstance(expression, Literal):
        # Type-discriminated and stringly so keys stay mutually comparable
        # (5 vs '5') and distinct across equal-hash values (0 vs False).
        value = expression.value
        return ("lit", type(value).__name__, repr(value))
    if isinstance(expression, Parameter):
        # Keyed by slot, never by bound value: every binding of a template
        # shares the signature (and therefore one cached plan), and the
        # "param" tag keeps parameterized specs from ever colliding with
        # literal ones.
        return ("param", expression.key)
    if isinstance(expression, (Arithmetic, Comparison)):
        return (
            type(expression).__name__,
            expression.op,
            expression_key(expression.left),
            expression_key(expression.right),
        )
    if isinstance(expression, BooleanOp):
        return (
            "bool",
            expression.op,
            tuple(expression_key(operand) for operand in expression.operands),
        )
    if isinstance(expression, FunctionCall):
        return (
            "call",
            expression.name,
            id(expression.fn),
            tuple(expression_key(argument) for argument in expression.args),
        )
    return ("opaque", id(expression))


def _scorer_key(predicate) -> tuple:
    """The behaviour token of a ranking predicate's scorer: expression
    scorers key structurally (with call identity), callables by identity —
    the cache entry holds the predicate, so the id stays live."""
    scorer = predicate.scorer
    if isinstance(scorer, Expression):
        return ("expr", expression_key(scorer))
    return ("fn", id(scorer))


def spec_signature(spec: QuerySpec) -> QuerySignature:
    """The normalized signature of a bound query spec (knob-independent).

    Boolean conditions are keyed by :func:`expression_key` (names can alias
    distinct expressions when callers pass ``name=`` explicitly, and repr
    hides the callable inside a ``FunctionCall``); ranking predicates are
    additionally keyed by their scorer (:func:`_scorer_key`), so two
    predicates sharing a name but scoring differently never collide.
    """
    # sort by repr: keys are heterogeneous tuples, not mutually orderable
    selections = tuple(
        sorted(
            ((expression_key(c.expression), c.cost) for c in spec.selections),
            key=repr,
        )
    )
    joins = tuple(
        sorted(
            (
                (
                    expression_key(j.predicate.expression),
                    tuple(sorted(j.tables)),
                    j.equi_keys,
                )
                for j in spec.join_conditions
            ),
            key=repr,
        )
    )
    scoring = spec.scoring
    predicates = tuple(
        (p.name, p.cost, p.p_max, _scorer_key(p)) for p in scoring.predicates
    )
    return (
        tuple(sorted(spec.tables)),
        selections,
        joins,
        (scoring.combiner, scoring.weights, predicates),
        spec.k,
        tuple(spec.projection) if spec.projection is not None else None,
        # Parameter structure (slot keys in order), never bound values —
        # all bindings of one template share this component.
        spec.parameters.signature() if spec.parameters is not None else None,
    )


def plan_signature(
    spec: QuerySpec, strategy: str, knobs: dict | None = None
) -> QuerySignature:
    """The full cache key: spec signature + strategy + optimizer knobs."""
    normalized_knobs = tuple(sorted((knobs or {}).items()))
    return (spec_signature(spec), strategy, normalized_knobs)
