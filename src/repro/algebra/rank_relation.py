"""Rank-relations: the paper's extended data model (Definition 1).

A rank-relation ``R_P`` is a relation whose tuples carry an implicit
*maximal-possible score* ``F_P[t]`` (with respect to a scoring function
``F`` and the set ``P`` of already-evaluated ranking predicates) and are
ordered by it, descending.  Ties are broken deterministically by row id.

:class:`RankRelation` here is the *reference* (materialized) semantics used
by the algebraic-law rewriter's equivalence checker and by tests; the
execution engine (:mod:`repro.execution`) produces the same sequences
incrementally.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping

from ..storage.row import Row
from .predicates import ScoringFunction


class ScoredRow:
    """A row together with its evaluated predicate scores."""

    __slots__ = ("row", "scores")

    def __init__(self, row: Row, scores: Mapping[str, float]):
        self.row = row
        self.scores: dict[str, float] = dict(scores)

    def __repr__(self) -> str:
        return f"ScoredRow({self.row!r}, scores={self.scores!r})"

    def with_score(self, name: str, score: float) -> "ScoredRow":
        """A copy with one more evaluated predicate score."""
        merged = dict(self.scores)
        merged[name] = score
        return ScoredRow(self.row, merged)

    def merge(self, other: "ScoredRow") -> "ScoredRow":
        """Join output: concatenated row, union of evaluated scores."""
        merged = dict(self.scores)
        merged.update(other.scores)
        return ScoredRow(self.row.concat(other.row), merged)


def rank_order_key(scoring: ScoringFunction, scored: ScoredRow) -> tuple:
    """Sort key realizing Definition 1's order: descending ``F_P``,
    then ascending row id for deterministic ties."""
    return (-scoring.upper_bound(scored.scores), scored.row.rid)


class RankRelation:
    """A materialized rank-relation: scored rows sorted per Definition 1."""

    def __init__(self, scoring: ScoringFunction, scored_rows: Iterable[ScoredRow] = ()):
        self.scoring = scoring
        self._rows = sorted(scored_rows, key=lambda s: rank_order_key(scoring, s))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[ScoredRow]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"RankRelation(n={len(self._rows)}, scoring={self.scoring!r})"

    @property
    def rows(self) -> list[ScoredRow]:
        return list(self._rows)

    def evaluated_predicates(self) -> set[str]:
        """The predicate set ``P`` (union over rows; normally identical)."""
        out: set[str] = set()
        for scored in self._rows:
            out.update(scored.scores)
        return out

    def upper_bounds(self) -> list[float]:
        """``F_P`` scores in output order."""
        return [self.scoring.upper_bound(s.scores) for s in self._rows]

    def rids(self) -> list[tuple]:
        """Row identities in output order."""
        return [s.row.rid for s in self._rows]

    def top(self, k: int) -> list[ScoredRow]:
        """The first ``k`` rows (λ_k)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return self._rows[:k]

    def same_membership(self, other: "RankRelation") -> bool:
        """Equal as multisets of tuple *values* (membership property).

        Values, not row identities: under set semantics a union or
        intersection may keep either duplicate's identity, and the two are
        the same tuple.
        """
        return Counter(s.row.values for s in self._rows) == Counter(
            s.row.values for s in other._rows
        )

    def same_order(self, other: "RankRelation") -> bool:
        """Equal output order of row identities (order property), strictly —
        ties must also agree."""
        return self.rids() == other.rids()

    def same_ranking(self, other: "RankRelation") -> bool:
        """Order-equivalent per Definition 1: the score sequences match and
        equal-score blocks hold the same tuples (tie order is arbitrary)."""
        if len(self) != len(other):
            return False
        mine = self._score_blocks()
        theirs = other._score_blocks()
        if len(mine) != len(theirs):
            return False
        for (score_a, rows_a), (score_b, rows_b) in zip(mine, theirs):
            if abs(score_a - score_b) > 1e-9 or rows_a != rows_b:
                return False
        return True

    def _score_blocks(self) -> list[tuple[float, Counter]]:
        blocks: list[tuple[float, Counter]] = []
        for scored in self._rows:
            score = self.scoring.upper_bound(scored.scores)
            if blocks and abs(blocks[-1][0] - score) <= 1e-9:
                blocks[-1][1][scored.row.values] += 1
            else:
                blocks.append((score, Counter({scored.row.values: 1})))
        return blocks

    def equivalent(self, other: "RankRelation") -> bool:
        """Both logical properties agree: membership and ranking order
        (tie-insensitive, since Definition 1's tie-breaker is arbitrary)."""
        return self.same_membership(other) and self.same_ranking(other)
