"""Logical operators of the rank-relational algebra (Figure 3).

Logical plans are trees of immutable nodes.  Every node knows

* its output :class:`Schema` (membership layout),
* the set of base tables it covers (``SR`` of the optimizer's signature),
* the set of ranking predicates evaluated in it (``SP``) — the paper's
  ``P`` of the output rank-relation.

:func:`evaluate_logical` is the *reference evaluator*: a direct, materialized
implementation of the Figure 3 semantics that produces a
:class:`~repro.algebra.rank_relation.RankRelation`.  It is deliberately
naive — the law rewriter's equivalence checker and the test suite use it as
ground truth against the pipelined physical operators.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..storage.catalog import Catalog
from ..storage.schema import Schema
from .expressions import Evaluator
from .predicates import BooleanPredicate, ScoringFunction
from .rank_relation import RankRelation, ScoredRow


class LogicalOperator:
    """Base class of logical plan nodes."""

    def schema(self) -> Schema:
        raise NotImplementedError

    def children(self) -> tuple["LogicalOperator", ...]:
        return ()

    def with_children(self, children: Sequence["LogicalOperator"]) -> "LogicalOperator":
        """Rebuild this node with new children (used by the rewriter)."""
        raise NotImplementedError

    def tables(self) -> frozenset[str]:
        """``SR``: base tables under this node."""
        out: set[str] = set()
        for child in self.children():
            out |= child.tables()
        return frozenset(out)

    def evaluated_predicates(self) -> frozenset[str]:
        """``SP``: the rank-relation's evaluated predicate set ``P``."""
        raise NotImplementedError

    def signature(self) -> tuple[frozenset[str], frozenset[str]]:
        """The optimizer signature ``(SR, SP)`` (§5.1)."""
        return (self.tables(), self.evaluated_predicates())

    def walk(self) -> Iterator["LogicalOperator"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return self.label()

    def label(self) -> str:
        raise NotImplementedError


class LogicalScan(LogicalOperator):
    """Base-relation access ``R_phi`` (no predicates evaluated yet)."""

    def __init__(self, table_name: str, schema: Schema):
        self.table_name = table_name
        self._schema = schema

    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalScan":
        if children:
            raise ValueError("scan has no children")
        return self

    def tables(self) -> frozenset[str]:
        return frozenset({self.table_name})

    def evaluated_predicates(self) -> frozenset[str]:
        return frozenset()

    def label(self) -> str:
        return f"Scan({self.table_name})"


class LogicalRankScan(LogicalOperator):
    """Base-relation access in the order of one predicate (``idxScan_p``).

    Logically equivalent to ``mu_p(Scan(R))`` — the predicate is part of
    ``SP`` — but flags that an index provides the order for free.
    """

    def __init__(self, table_name: str, schema: Schema, predicate_name: str):
        self.table_name = table_name
        self._schema = schema
        self.predicate_name = predicate_name

    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalRankScan":
        if children:
            raise ValueError("scan has no children")
        return self

    def tables(self) -> frozenset[str]:
        return frozenset({self.table_name})

    def evaluated_predicates(self) -> frozenset[str]:
        return frozenset({self.predicate_name})

    def label(self) -> str:
        return f"RankScan({self.table_name}, {self.predicate_name})"


class LogicalRank(LogicalOperator):
    """The new rank operator µ_p: evaluates one more ranking predicate."""

    def __init__(self, child: LogicalOperator, predicate_name: str):
        self.child = child
        self.predicate_name = predicate_name

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalRank":
        (child,) = children
        return LogicalRank(child, self.predicate_name)

    def evaluated_predicates(self) -> frozenset[str]:
        return self.child.evaluated_predicates() | {self.predicate_name}

    def label(self) -> str:
        return f"Rank(mu_{self.predicate_name})"


class LogicalSelect(LogicalOperator):
    """Selection σ_c: filters membership, preserves the input order."""

    def __init__(self, child: LogicalOperator, condition: BooleanPredicate):
        self.child = child
        self.condition = condition

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalSelect":
        (child,) = children
        return LogicalSelect(child, self.condition)

    def evaluated_predicates(self) -> frozenset[str]:
        return self.child.evaluated_predicates()

    def label(self) -> str:
        return f"Select({self.condition.name})"


class LogicalProject(LogicalOperator):
    """Projection π: keeps the named columns, preserves order and scores."""

    def __init__(self, child: LogicalOperator, columns: Sequence[str]):
        self.child = child
        self.columns = tuple(columns)

    def schema(self) -> Schema:
        return self.child.schema().project(self.columns)

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalProject":
        (child,) = children
        return LogicalProject(child, self.columns)

    def evaluated_predicates(self) -> frozenset[str]:
        return self.child.evaluated_predicates()

    def label(self) -> str:
        return f"Project({', '.join(self.columns)})"


class LogicalJoin(LogicalOperator):
    """Join ⋈_c (Cartesian product when ``condition`` is None).

    Output order is the aggregate order by ``P1 ∪ P2``.
    """

    def __init__(
        self,
        left: LogicalOperator,
        right: LogicalOperator,
        condition: BooleanPredicate | None,
    ):
        self.left = left
        self.right = right
        self.condition = condition

    def schema(self) -> Schema:
        return self.left.schema().concat(self.right.schema())

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalJoin":
        left, right = children
        return LogicalJoin(left, right, self.condition)

    def evaluated_predicates(self) -> frozenset[str]:
        return self.left.evaluated_predicates() | self.right.evaluated_predicates()

    def label(self) -> str:
        cond = self.condition.name if self.condition else "x"
        return f"Join({cond})"


class _SetOperator(LogicalOperator):
    """Common base of the binary set operators (union-compatible inputs)."""

    symbol = "?"

    def __init__(self, left: LogicalOperator, right: LogicalOperator):
        if len(left.schema()) != len(right.schema()):
            raise ValueError(f"{self.symbol}: operand schemas have different arity")
        self.left = left
        self.right = right

    def schema(self) -> Schema:
        return self.left.schema()

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOperator]) -> "_SetOperator":
        left, right = children
        return type(self)(left, right)

    def label(self) -> str:
        return f"{type(self).__name__.removeprefix('Logical')}"


class LogicalUnion(_SetOperator):
    """Union ∪ (set semantics): aggregate order by ``P1 ∪ P2``."""

    symbol = "∪"

    def evaluated_predicates(self) -> frozenset[str]:
        return self.left.evaluated_predicates() | self.right.evaluated_predicates()


class LogicalIntersect(_SetOperator):
    """Intersection ∩: aggregate order by ``P1 ∪ P2``.

    ``by_identity=True`` gives the paper's ``∩_r`` variant (Proposition 6):
    tuples match by row *identity* rather than by value, so two ranked
    scans of the same base relation intersect to that relation even in the
    presence of duplicate values.
    """

    symbol = "∩"

    def __init__(
        self,
        left: LogicalOperator,
        right: LogicalOperator,
        by_identity: bool = False,
    ):
        super().__init__(left, right)
        self.by_identity = by_identity

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalIntersect":
        left, right = children
        return LogicalIntersect(left, right, self.by_identity)

    def evaluated_predicates(self) -> frozenset[str]:
        return self.left.evaluated_predicates() | self.right.evaluated_predicates()

    def label(self) -> str:
        return "Intersect_r" if self.by_identity else "Intersect"


class LogicalDifference(_SetOperator):
    """Difference −: keeps the outer operand's order (``P1``)."""

    symbol = "−"

    def evaluated_predicates(self) -> frozenset[str]:
        return self.left.evaluated_predicates()


class LogicalSort(LogicalOperator):
    """The traditional monolithic sort τ_F: evaluates *all* predicates."""

    def __init__(self, child: LogicalOperator, scoring: ScoringFunction):
        self.child = child
        self.scoring = scoring

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalSort":
        (child,) = children
        return LogicalSort(child, self.scoring)

    def evaluated_predicates(self) -> frozenset[str]:
        return self.child.evaluated_predicates() | set(self.scoring.predicate_names)

    def label(self) -> str:
        return f"Sort({'+'.join(self.scoring.predicate_names)})"


class LogicalLimit(LogicalOperator):
    """λ_k: keep the top ``k`` rows of the input order."""

    def __init__(self, child: LogicalOperator, k: int):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.child = child
        self.k = k

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "LogicalLimit":
        (child,) = children
        return LogicalLimit(child, self.k)

    def evaluated_predicates(self) -> frozenset[str]:
        return self.child.evaluated_predicates()

    def label(self) -> str:
        return f"Limit({self.k})"


def explain(plan: LogicalOperator, indent: int = 0) -> str:
    """Pretty-print a logical plan tree."""
    lines = ["  " * indent + plan.label()]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Reference (materialized) evaluator — the ground-truth semantics
# ----------------------------------------------------------------------

def evaluate_logical(
    plan: LogicalOperator,
    catalog: Catalog,
    scoring: ScoringFunction,
) -> RankRelation:
    """Materialize the rank-relation a logical plan denotes (Figure 3).

    Predicate scores are evaluated on demand; binary operators complete the
    missing side's predicates so the output is ranked by ``P1 ∪ P2``, per the
    operator definitions.
    """
    evaluator = _ReferenceEvaluator(catalog, scoring)
    return evaluator.run(plan)


class _ReferenceEvaluator:
    def __init__(self, catalog: Catalog, scoring: ScoringFunction):
        self.catalog = catalog
        self.scoring = scoring
        self._compiled: dict[tuple[str, Schema], Evaluator] = {}

    def run(self, plan: LogicalOperator) -> RankRelation:
        scored = self._rows(plan)
        return RankRelation(self.scoring, scored)

    def _score_fn(self, predicate_name: str, schema: Schema) -> Evaluator:
        key = (predicate_name, schema)
        if key not in self._compiled:
            predicate = self.scoring.predicate(predicate_name)
            self._compiled[key] = predicate.compile(schema)
        return self._compiled[key]

    def _rows(self, plan: LogicalOperator) -> list[ScoredRow]:
        if isinstance(plan, LogicalScan):
            table = self.catalog.table(plan.table_name)
            return [ScoredRow(row, {}) for row in table.rows()]
        if isinstance(plan, LogicalRankScan):
            table = self.catalog.table(plan.table_name)
            fn = self._score_fn(plan.predicate_name, plan.schema())
            return [
                ScoredRow(row, {plan.predicate_name: fn(row)}) for row in table.rows()
            ]
        if isinstance(plan, LogicalRank):
            inputs = self._rows(plan.child)
            fn = self._score_fn(plan.predicate_name, plan.schema())
            return [s.with_score(plan.predicate_name, fn(s.row)) for s in inputs]
        if isinstance(plan, LogicalSelect):
            inputs = self._rows(plan.child)
            condition = plan.condition.compile(plan.child.schema())
            return [s for s in inputs if condition(s.row)]
        if isinstance(plan, LogicalProject):
            inputs = self._rows(plan.child)
            child_schema = plan.child.schema()
            positions = [child_schema.index_of(c) for c in plan.columns]
            return [ScoredRow(s.row.project(positions), s.scores) for s in inputs]
        if isinstance(plan, LogicalJoin):
            return self._join(plan)
        if isinstance(plan, LogicalUnion):
            return self._union(plan)
        if isinstance(plan, LogicalIntersect):
            return self._intersect(plan)
        if isinstance(plan, LogicalDifference):
            return self._difference(plan)
        if isinstance(plan, LogicalSort):
            inputs = self._rows(plan.child)
            schema = plan.schema()
            out = []
            for s in inputs:
                scores = dict(s.scores)
                for name in self.scoring.predicate_names:
                    if name not in scores:
                        scores[name] = self._score_fn(name, schema)(s.row)
                out.append(ScoredRow(s.row, scores))
            return out
        if isinstance(plan, LogicalLimit):
            inputs = self._rows(plan.child)
            ranked = RankRelation(self.scoring, inputs)
            return ranked.top(plan.k)
        raise TypeError(f"unknown logical operator: {type(plan).__name__}")

    def _join(self, plan: LogicalJoin) -> list[ScoredRow]:
        left = self._rows(plan.left)
        right = self._rows(plan.right)
        schema = plan.schema()
        condition = plan.condition.compile(schema) if plan.condition else None
        out = []
        for ls in left:
            for rs in right:
                merged = ls.merge(rs)
                if condition is None or condition(merged.row):
                    out.append(merged)
        return out

    def _complete(self, scored: ScoredRow, wanted: frozenset[str], schema: Schema) -> ScoredRow:
        """Evaluate any of ``wanted`` still missing from ``scored``."""
        missing = wanted - set(scored.scores)
        if not missing:
            return scored
        scores = dict(scored.scores)
        for name in missing:
            scores[name] = self._score_fn(name, schema)(scored.row)
        return ScoredRow(scored.row, scores)

    def _union(self, plan: LogicalUnion) -> list[ScoredRow]:
        wanted = plan.evaluated_predicates()
        schema = plan.schema()
        by_value: dict[tuple, ScoredRow] = {}
        for scored in self._rows(plan.left) + self._rows(plan.right):
            key = scored.row.values
            if key in by_value:
                merged = dict(by_value[key].scores)
                merged.update(scored.scores)
                by_value[key] = ScoredRow(by_value[key].row, merged)
            else:
                by_value[key] = scored
        return [self._complete(s, wanted, schema) for s in by_value.values()]

    def _intersect(self, plan: LogicalIntersect) -> list[ScoredRow]:
        wanted = plan.evaluated_predicates()
        schema = plan.schema()

        def key_of(scored: ScoredRow):
            return scored.row.rid if plan.by_identity else scored.row.values

        right_by_key: dict[tuple, ScoredRow] = {}
        for scored in self._rows(plan.right):
            right_by_key.setdefault(key_of(scored), scored)
        out = []
        seen: set[tuple] = set()
        for scored in self._rows(plan.left):
            key = key_of(scored)
            if key in right_by_key and key not in seen:
                seen.add(key)
                merged = dict(scored.scores)
                merged.update(right_by_key[key].scores)
                out.append(
                    self._complete(ScoredRow(scored.row, merged), wanted, schema)
                )
        return out

    def _difference(self, plan: LogicalDifference) -> list[ScoredRow]:
        right_values = {s.row.values for s in self._rows(plan.right)}
        out = []
        seen: set[tuple] = set()
        for scored in self._rows(plan.left):
            key = scored.row.values
            if key not in right_values and key not in seen:
                seen.add(key)
                out.append(scored)
        return out
