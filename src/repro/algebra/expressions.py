"""Scalar expression trees.

Boolean conditions (``r.cuisine = 'Italian'``, ``h.price + r.price < 100``)
and cheap ranking expressions (``(200 - h.price) * 0.2``) are represented as
immutable expression trees.  An expression is *compiled* against a schema
into a plain Python closure mapping a row to a value, so per-tuple
evaluation involves no tree walking.

Expression nodes support operator overloading for convenient construction::

    col("h.price") + col("r.price") < lit(100)
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..storage.row import Row
from ..storage.schema import Schema

Evaluator = Callable[[Row], Any]


class Expression:
    """Base class of all scalar expressions."""

    def compile(self, schema: Schema) -> Evaluator:
        """Compile to a ``row -> value`` closure over the given schema."""
        raise NotImplementedError

    def references(self) -> set[str]:
        """All (possibly qualified) column references in this expression."""
        out: set[str] = set()
        self._collect_references(out)
        return out

    def tables(self) -> set[str]:
        """Table qualifiers appearing in this expression's column refs."""
        return {r.partition(".")[0] for r in self.references() if "." in r}

    def _collect_references(self, out: set[str]) -> None:
        for child in self.children():
            child._collect_references(out)

    def children(self) -> Iterator["Expression"]:
        return iter(())

    # -- operator overloading ------------------------------------------
    def __add__(self, other: "Expression | float | int") -> "Arithmetic":
        return Arithmetic("+", self, _coerce(other))

    def __sub__(self, other: "Expression | float | int") -> "Arithmetic":
        return Arithmetic("-", self, _coerce(other))

    def __mul__(self, other: "Expression | float | int") -> "Arithmetic":
        return Arithmetic("*", self, _coerce(other))

    def __truediv__(self, other: "Expression | float | int") -> "Arithmetic":
        return Arithmetic("/", self, _coerce(other))

    def __lt__(self, other: "Expression | float | int") -> "Comparison":
        return Comparison("<", self, _coerce(other))

    def __le__(self, other: "Expression | float | int") -> "Comparison":
        return Comparison("<=", self, _coerce(other))

    def __gt__(self, other: "Expression | float | int") -> "Comparison":
        return Comparison(">", self, _coerce(other))

    def __ge__(self, other: "Expression | float | int") -> "Comparison":
        return Comparison(">=", self, _coerce(other))

    def eq(self, other: "Expression | float | int | str") -> "Comparison":
        """Equality comparison (named method; ``==`` is kept for identity)."""
        return Comparison("=", self, _coerce(other))

    def ne(self, other: "Expression | float | int | str") -> "Comparison":
        return Comparison("!=", self, _coerce(other))

    def and_(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("and", [self, other])

    def or_(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("or", [self, other])

    def not_(self) -> "BooleanOp":
        return BooleanOp("not", [self])


def _coerce(value: "Expression | float | int | str | bool") -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


class ColumnRef(Expression):
    """Reference to a column by (possibly qualified) name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def compile(self, schema: Schema) -> Evaluator:
        position = schema.index_of(self.name)
        return lambda row: row[position]

    def _collect_references(self, out: set[str]) -> None:
        out.add(self.name)

    def __repr__(self) -> str:
        return self.name


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def compile(self, schema: Schema) -> Evaluator:
        value = self.value
        return lambda row: value

    def __repr__(self) -> str:
        return repr(self.value)


_ARITHMETIC_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}

_COMPARISON_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Arithmetic(Expression):
    """Binary arithmetic (``+ - * / %``); NULL-propagating."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def compile(self, schema: Schema) -> Evaluator:
        fn = _ARITHMETIC_OPS[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)

        def evaluate(row: Row) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return fn(a, b)

        return evaluate

    def children(self) -> Iterator[Expression]:
        yield self.left
        yield self.right

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Comparison(Expression):
    """Binary comparison; NULL compares to False (SQL three-valued logic
    collapsed to two-valued, which suffices for this engine)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def compile(self, schema: Schema) -> Evaluator:
        fn = _COMPARISON_OPS[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)

        def evaluate(row: Row) -> bool:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return False
            return fn(a, b)

        return evaluate

    def children(self) -> Iterator[Expression]:
        yield self.left
        yield self.right

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanOp(Expression):
    """N-ary AND / OR or unary NOT over Boolean sub-expressions."""

    __slots__ = ("op", "operands")

    def __init__(self, op: str, operands: Sequence[Expression]):
        if op not in ("and", "or", "not"):
            raise ValueError(f"unknown boolean operator: {op!r}")
        if op == "not" and len(operands) != 1:
            raise ValueError("NOT takes exactly one operand")
        if op in ("and", "or") and not operands:
            raise ValueError(f"{op.upper()} needs at least one operand")
        self.op = op
        self.operands = tuple(operands)

    def compile(self, schema: Schema) -> Evaluator:
        compiled = [operand.compile(schema) for operand in self.operands]
        if self.op == "not":
            inner = compiled[0]
            return lambda row: not inner(row)
        if self.op == "and":
            return lambda row: all(fn(row) for fn in compiled)
        return lambda row: any(fn(row) for fn in compiled)

    def children(self) -> Iterator[Expression]:
        return iter(self.operands)

    def __repr__(self) -> str:
        if self.op == "not":
            return f"(not {self.operands[0]!r})"
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(o) for o in self.operands) + ")"


class FunctionCall(Expression):
    """Call of a named Python function over sub-expression arguments."""

    __slots__ = ("name", "fn", "args")

    def __init__(self, name: str, fn: Callable[..., Any], args: Sequence[Expression]):
        self.name = name
        self.fn = fn
        self.args = tuple(args)

    def compile(self, schema: Schema) -> Evaluator:
        compiled = [arg.compile(schema) for arg in self.args]
        fn = self.fn
        return lambda row: fn(*(c(row) for c in compiled))

    def children(self) -> Iterator[Expression]:
        return iter(self.args)

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({args})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def conjunction(terms: Sequence[Expression]) -> Expression:
    """AND together a non-empty sequence of terms (single term passes through)."""
    if not terms:
        raise ValueError("conjunction of zero terms")
    if len(terms) == 1:
        return terms[0]
    return BooleanOp("and", list(terms))


def split_conjuncts(expression: Expression) -> list[Expression]:
    """Flatten nested ANDs into a list of conjuncts (selection splitting)."""
    if isinstance(expression, BooleanOp) and expression.op == "and":
        out: list[Expression] = []
        for operand in expression.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [expression]
