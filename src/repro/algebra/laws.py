"""Algebraic equivalence laws of the rank-relational algebra (Figure 5).

Each law is an executable rewrite: given a plan whose root matches the law's
left-hand side, it returns the rewritten plan (or None when the law does not
apply).  :func:`transformations` applies every law at every node, yielding
the one-step neighbours of a plan — the building block of a Volcano-style
rule-based optimizer and of the equivalence tests.

The laws implemented, keyed to the paper's propositions:

* **Proposition 1 (splitting)** — ``R_{p1..pn} ≡ mu_p1(mu_p2(...(mu_pn(R))))``:
  :func:`split_sort` replaces a monolithic sort τ_F by a chain of µ's.
* **Proposition 2 (commutativity of binary ops)** — :func:`commute_binary`.
* **Proposition 3 (associativity)** — :func:`associate_left` /
  :func:`associate_right` for ∪, ∩ and ⋈ (when join columns remain
  available).
* **Proposition 4 (commuting µ)** — :func:`swap_rank_rank`,
  :func:`swap_rank_select` and :func:`swap_select_rank`.
* **Proposition 5 (pushing µ over binary ops)** — :func:`push_rank_into_join`,
  :func:`push_rank_into_setop`, and the inverse :func:`pull_rank_above`.
* **Proposition 6 (multiple-scan)** — :func:`multiple_scan`:
  ``mu_p1(mu_p2(R_phi)) ≡ mu_p1(R_phi) ∩ mu_p2(R_phi)``.

Equivalence in this algebra means *both* logical properties agree:
membership and order.  :func:`plans_equivalent` checks this with the
reference evaluator.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..storage.catalog import Catalog
from .operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalJoin,
    LogicalOperator,
    LogicalRank,
    LogicalRankScan,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
    LogicalUnion,
    evaluate_logical,
)
from .predicates import ScoringFunction

Law = Callable[[LogicalOperator, ScoringFunction], "LogicalOperator | None"]


# ----------------------------------------------------------------------
# Proposition 1: splitting the monolithic sort into a chain of µ's
# ----------------------------------------------------------------------

def split_sort(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """τ_F(R) → µ_p1(µ_p2(...(µ_pn(R))...)) for predicates not yet evaluated."""
    if not isinstance(plan, LogicalSort):
        return None
    child = plan.child
    done = child.evaluated_predicates()
    rewritten: LogicalOperator = child
    for name in reversed(plan.scoring.predicate_names):
        if name not in done:
            rewritten = LogicalRank(rewritten, name)
    return rewritten


def merge_ranks_to_sort(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """Inverse of splitting: a µ chain completing F collapses to τ_F."""
    if not isinstance(plan, LogicalRank):
        return None
    node: LogicalOperator = plan
    while isinstance(node, LogicalRank):
        node = node.child
    if plan.evaluated_predicates() == frozenset(scoring.predicate_names):
        return LogicalSort(node, scoring)
    return None


# ----------------------------------------------------------------------
# Proposition 2: commutativity of ∪, ∩, ⋈
# ----------------------------------------------------------------------

def _clone_setop(plan, left, right):
    """Rebuild a set operator preserving node attributes (e.g. ∩_r)."""
    return plan.with_children([left, right])


def commute_binary(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """R Θ S → S Θ R for Θ ∈ {∩, ∪, ⋈}.

    Note: for ⋈ the *logical* rank-relation is order-equivalent, but the
    column layout flips, so the rewriter only commutes set operators where
    layout is shared; join commutation is handled by the optimizer's join
    enumeration instead.
    """
    if isinstance(plan, (LogicalUnion, LogicalIntersect)):
        return _clone_setop(plan, plan.right, plan.left)
    return None


# ----------------------------------------------------------------------
# Proposition 3: associativity of ∪, ∩ (and ⋈ via the optimizer)
# ----------------------------------------------------------------------

def _same_setop(outer, inner) -> bool:
    if type(outer) is not type(inner):
        return False
    if isinstance(outer, LogicalIntersect):
        return outer.by_identity == inner.by_identity
    return True


def associate_left(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """R Θ (S Θ T) → (R Θ S) Θ T for Θ ∈ {∩, ∪}."""
    if isinstance(plan, (LogicalUnion, LogicalIntersect)) and _same_setop(
        plan, plan.right
    ):
        inner = plan.right
        return _clone_setop(
            plan, _clone_setop(plan, plan.left, inner.left), inner.right
        )
    return None


def associate_right(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """(R Θ S) Θ T → R Θ (S Θ T) for Θ ∈ {∩, ∪}."""
    if isinstance(plan, (LogicalUnion, LogicalIntersect)) and _same_setop(
        plan, plan.left
    ):
        inner = plan.left
        return _clone_setop(
            plan, inner.left, _clone_setop(plan, inner.right, plan.right)
        )
    return None


# ----------------------------------------------------------------------
# Proposition 4: commuting µ with unary operators
# ----------------------------------------------------------------------

def swap_rank_rank(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """µ_p1(µ_p2(R)) → µ_p2(µ_p1(R))."""
    if isinstance(plan, LogicalRank) and isinstance(plan.child, LogicalRank):
        inner = plan.child
        return LogicalRank(
            LogicalRank(inner.child, plan.predicate_name), inner.predicate_name
        )
    return None


def swap_rank_select(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """σ_c(µ_p(R)) → µ_p(σ_c(R))."""
    if isinstance(plan, LogicalSelect) and isinstance(plan.child, LogicalRank):
        inner = plan.child
        return LogicalRank(
            LogicalSelect(inner.child, plan.condition), inner.predicate_name
        )
    return None


def swap_select_rank(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """µ_p(σ_c(R)) → σ_c(µ_p(R))."""
    if isinstance(plan, LogicalRank) and isinstance(plan.child, LogicalSelect):
        inner = plan.child
        return LogicalSelect(
            LogicalRank(inner.child, plan.predicate_name), inner.condition
        )
    return None


# ----------------------------------------------------------------------
# Proposition 5: pushing µ over binary operators
# ----------------------------------------------------------------------

def _pushable_sides(
    plan_rank: LogicalRank,
    left: LogicalOperator,
    right: LogicalOperator,
    scoring: ScoringFunction,
) -> tuple[bool, bool]:
    """Which operands can evaluate the predicate (own its attributes)."""
    predicate = scoring.predicate(plan_rank.predicate_name)
    on_left = predicate.evaluable_on(left.schema())
    on_right = predicate.evaluable_on(right.schema())
    return on_left, on_right


def push_rank_into_join(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """µ_p(R ⋈_c S) → µ_p(R) ⋈_c S (p's attributes on R only), or
    µ_p(R) ⋈_c µ_p(S) when both sides have them."""
    if not (isinstance(plan, LogicalRank) and isinstance(plan.child, LogicalJoin)):
        return None
    join = plan.child
    on_left, on_right = _pushable_sides(plan, join.left, join.right, scoring)
    name = plan.predicate_name
    if on_left and on_right:
        return LogicalJoin(
            LogicalRank(join.left, name), LogicalRank(join.right, name), join.condition
        )
    if on_left:
        return LogicalJoin(LogicalRank(join.left, name), join.right, join.condition)
    if on_right:
        return LogicalJoin(join.left, LogicalRank(join.right, name), join.condition)
    return None


def push_rank_into_setop(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """µ_p over ∪ / ∩ / − pushes to one or both operands (Prop 5, rows 2–4).

    For − only the outer operand's order matters, so µ pushes to the left
    (pushing to both is also sound; we emit the cheaper single push).
    """
    if not isinstance(plan, LogicalRank):
        return None
    child = plan.child
    name = plan.predicate_name
    if isinstance(child, (LogicalUnion, LogicalIntersect)):
        return _clone_setop(
            child, LogicalRank(child.left, name), LogicalRank(child.right, name)
        )
    if isinstance(child, LogicalDifference):
        return LogicalDifference(LogicalRank(child.left, name), child.right)
    return None


def pull_rank_above(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """Inverse of pushing: Θ(µ_p(R), µ_p(S)) → µ_p(Θ(R, S))."""
    if isinstance(plan, (LogicalUnion, LogicalIntersect)):
        left, right = plan.left, plan.right
        if (
            isinstance(left, LogicalRank)
            and isinstance(right, LogicalRank)
            and left.predicate_name == right.predicate_name
        ):
            return LogicalRank(
                _clone_setop(plan, left.child, right.child), left.predicate_name
            )
    if isinstance(plan, LogicalJoin) and isinstance(plan.left, LogicalRank):
        # µ_p(R) ⋈ S → µ_p(R ⋈ S); sound regardless of where p's columns live.
        left = plan.left
        return LogicalRank(
            LogicalJoin(left.child, plan.right, plan.condition), left.predicate_name
        )
    return None


# ----------------------------------------------------------------------
# Proposition 6: multiple-scan
# ----------------------------------------------------------------------

def multiple_scan(plan: LogicalOperator, scoring: ScoringFunction) -> LogicalOperator | None:
    """µ_p1(µ_p2(R_phi)) → µ_p1(R_phi) ∩_r µ_p2(R_phi).

    Applies when the inner input is a raw base-table scan (P = φ), modelling
    two independent ranked scans of the same table merged by intersection.
    The intersection is the paper's ``∩_r`` — matching by row identity —
    so duplicate tuple values in R survive, keeping the law exact under
    bag inputs.
    """
    if (
        isinstance(plan, LogicalRank)
        and isinstance(plan.child, LogicalRank)
        and isinstance(plan.child.child, LogicalScan)
    ):
        scan = plan.child.child
        return LogicalIntersect(
            LogicalRank(scan, plan.predicate_name),
            LogicalRank(scan, plan.child.predicate_name),
            by_identity=True,
        )
    return None


ALL_LAWS: tuple[Law, ...] = (
    split_sort,
    merge_ranks_to_sort,
    commute_binary,
    associate_left,
    associate_right,
    swap_rank_rank,
    swap_rank_select,
    swap_select_rank,
    push_rank_into_join,
    push_rank_into_setop,
    pull_rank_above,
    multiple_scan,
)


def apply_at_root(plan: LogicalOperator, scoring: ScoringFunction) -> Iterator[LogicalOperator]:
    """All one-law rewrites applicable at the root of ``plan``."""
    for law in ALL_LAWS:
        rewritten = law(plan, scoring)
        if rewritten is not None:
            yield rewritten


def transformations(plan: LogicalOperator, scoring: ScoringFunction) -> Iterator[LogicalOperator]:
    """All plans reachable from ``plan`` by one law application anywhere."""
    yield from apply_at_root(plan, scoring)
    children = plan.children()
    for i, child in enumerate(children):
        for rewritten_child in transformations(child, scoring):
            replaced = list(children)
            replaced[i] = rewritten_child
            yield plan.with_children(replaced)


def equivalence_closure(
    plan: LogicalOperator,
    scoring: ScoringFunction,
    max_plans: int = 200,
) -> list[LogicalOperator]:
    """Breadth-first closure of ``plan`` under the laws (bounded).

    This is the plan space a Volcano/Cascades-style rule-based optimizer
    would memoize; the bound keeps the exponential space manageable.
    """
    seen: dict[str, LogicalOperator] = {_fingerprint(plan): plan}
    frontier = [plan]
    while frontier and len(seen) < max_plans:
        next_frontier = []
        for current in frontier:
            for neighbour in transformations(current, scoring):
                key = _fingerprint(neighbour)
                if key not in seen:
                    seen[key] = neighbour
                    next_frontier.append(neighbour)
                    if len(seen) >= max_plans:
                        break
            if len(seen) >= max_plans:
                break
        frontier = next_frontier
    return list(seen.values())


def _fingerprint(plan: LogicalOperator) -> str:
    parts = [plan.label()]
    for child in plan.children():
        parts.append("(" + _fingerprint(child) + ")")
    return "".join(parts)


def plans_equivalent(
    left: LogicalOperator,
    right: LogicalOperator,
    catalog: Catalog,
    scoring: ScoringFunction,
) -> bool:
    """Check rank-relational equivalence (membership *and* order) by
    materializing both plans with the reference evaluator."""
    a = evaluate_logical(left, catalog, scoring)
    b = evaluate_logical(right, catalog, scoring)
    return a.equivalent(b)
