"""Boolean and ranking predicates, and monotone scoring functions.

The paper's query model (§2.1) has four predicate kinds:

* Boolean *selection* predicates (reference one table) and Boolean *join*
  predicates (reference several) — :class:`BooleanPredicate`;
* *rank-selection* predicates (one table) and *rank-join* predicates
  (several) — :class:`RankingPredicate`.

A ranking predicate returns a numeric score in ``[0, p_max]`` and carries an
evaluation *cost* (the paper models predicates as user-defined functions of
widely varying cost).  The overall query score is a monotone
:class:`ScoringFunction` over the predicate scores; the upper-bound
(maximal-possible) score ``F_P[t]`` of Property 1 substitutes ``p_max`` for
every unevaluated predicate.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..storage.row import Row
from ..storage.schema import Schema
from .expressions import Evaluator, Expression


class BooleanPredicate:
    """A Boolean filter condition over one or more tables.

    Like ranking predicates, Boolean predicates "can be of various costs"
    (§2.1) — ``cost`` is the per-evaluation cost in the same abstract units
    (default: the cheap built-in comparison).  The optimizer's Boolean-
    scheduling dimension uses it to decide where to place expensive filters.
    """

    __slots__ = ("name", "expression", "cost")

    DEFAULT_COST = 0.1

    def __init__(
        self,
        expression: Expression,
        name: str | None = None,
        cost: float = DEFAULT_COST,
    ):
        if cost < 0:
            raise ValueError("predicate cost must be non-negative")
        self.expression = expression
        self.name = name or repr(expression)
        self.cost = float(cost)

    def __repr__(self) -> str:
        return f"BooleanPredicate({self.name})"

    def tables(self) -> set[str]:
        """Tables referenced by this condition."""
        return self.expression.tables()

    @property
    def is_join_predicate(self) -> bool:
        """True when the condition spans more than one table."""
        return len(self.tables()) > 1

    def compile(self, schema: Schema) -> Evaluator:
        return self.expression.compile(schema)


class RankingPredicate:
    """A named ranking predicate ``p`` with score range ``[0, p_max]``.

    ``scorer`` is either an :class:`Expression` or a plain callable taking
    the referenced column values in declaration order.  ``cost`` is the
    per-evaluation cost in abstract units (the experiments sweep it from 0 to
    1000); the execution engine charges it to the metrics on every call.
    """

    __slots__ = (
        "name",
        "columns",
        "cost",
        "p_max",
        "spin_loops",
        "_expression",
        "_fn",
    )

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        scorer: Expression | Callable[..., float],
        cost: float = 1.0,
        p_max: float = 1.0,
        spin_loops: int = 0,
    ):
        if not name:
            raise ValueError("ranking predicate needs a name")
        if cost < 0:
            raise ValueError("predicate cost must be non-negative")
        if p_max <= 0:
            raise ValueError("p_max must be positive")
        if spin_loops < 0:
            raise ValueError("spin_loops must be non-negative")
        self.name = name
        self.columns = tuple(columns)
        self.cost = float(cost)
        self.p_max = float(p_max)
        #: busy-work iterations per evaluation — makes the abstract `cost`
        #: show up in *wall time* too (for wall-clock-faithful benchmarks)
        self.spin_loops = int(spin_loops)
        if isinstance(scorer, Expression):
            self._expression: Expression | None = scorer
            self._fn: Callable[..., float] | None = None
        else:
            self._expression = None
            self._fn = scorer

    def __repr__(self) -> str:
        return f"RankingPredicate({self.name}, cost={self.cost})"

    def tables(self) -> set[str]:
        """Tables referenced by this predicate's input columns."""
        if self._expression is not None:
            return self._expression.tables()
        return {c.partition(".")[0] for c in self.columns if "." in c}

    @property
    def scorer(self) -> "Expression | Callable[..., float]":
        """The underlying scorer (an expression tree or a plain callable).

        Plan-cache signatures key on this so two predicates that merely
        share a name cannot collide (see
        :func:`repro.planner.signature.expression_key`).
        """
        if self._expression is not None:
            return self._expression
        assert self._fn is not None
        return self._fn

    @property
    def is_join_predicate(self) -> bool:
        """True for rank-join predicates (spanning several tables)."""
        return len(self.tables()) > 1

    def compile(self, schema: Schema) -> Evaluator:
        """Compile to a ``row -> score`` closure over ``schema``.

        Scores are clamped to ``[0, p_max]`` so the upper-bound reasoning of
        the ranking principle stays sound even for sloppy user functions.
        """
        p_max = self.p_max
        if self._expression is not None:
            inner = self.expression_evaluator(schema)
        else:
            positions = [schema.index_of(c) for c in self.columns]
            fn = self._fn
            assert fn is not None

            def inner(row: Row) -> float:
                return fn(*(row[p] for p in positions))

        spin_loops = self.spin_loops

        def evaluate(row: Row) -> float:
            if spin_loops:
                sink = 0
                for i in range(spin_loops):
                    sink += i
            score = inner(row)
            if score is None:
                return 0.0
            if score < 0.0:
                return 0.0
            if score > p_max:
                return p_max
            return float(score)

        return evaluate

    def expression_evaluator(self, schema: Schema) -> Evaluator:
        assert self._expression is not None
        return self._expression.compile(schema)

    def evaluable_on(self, schema: Schema) -> bool:
        """Whether every input column of this predicate resolves in ``schema``."""
        if self._expression is not None:
            refs = self._expression.references()
        else:
            refs = set(self.columns)
        return all(schema.has_column(r) for r in refs)


class ScoringFunction:
    """A monotone aggregate ``F(p1, ..., pn)`` over ranking predicates.

    Supported combiners (all monotone for non-negative scores): ``sum``,
    ``wsum`` (weighted sum), ``product``, ``min``, ``max``, ``avg``.  The
    paper uses summation throughout; the others exercise the generality
    claim.
    """

    COMBINERS = ("sum", "wsum", "product", "min", "max", "avg")

    def __init__(
        self,
        predicates: Sequence[RankingPredicate],
        combiner: str = "sum",
        weights: Sequence[float] | None = None,
    ):
        if combiner not in self.COMBINERS:
            raise ValueError(f"unknown combiner: {combiner!r}")
        if not predicates:
            raise ValueError("scoring function needs at least one predicate")
        names = [p.name for p in predicates]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate predicate names: {names}")
        if combiner == "wsum":
            if weights is None or len(weights) != len(predicates):
                raise ValueError("wsum needs one weight per predicate")
            if any(w < 0 for w in weights):
                raise ValueError("wsum weights must be non-negative")
            self.weights = tuple(float(w) for w in weights)
        else:
            self.weights = tuple(1.0 for __ in predicates)
        self.predicates = tuple(predicates)
        self.combiner = combiner
        self._by_name = {p.name: p for p in self.predicates}

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.predicates)
        return f"ScoringFunction({self.combiner}; {names})"

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def predicate_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.predicates)

    def predicate(self, name: str) -> RankingPredicate:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"predicate {name!r} not in {self!r}") from None

    def combine(self, scores: Sequence[float]) -> float:
        """Apply the combiner to a full score vector (one per predicate)."""
        if len(scores) != len(self.predicates):
            raise ValueError("score vector arity mismatch")
        if self.combiner in ("sum", "wsum"):
            return sum(w * s for w, s in zip(self.weights, scores))
        if self.combiner == "product":
            out = 1.0
            for s in scores:
                out *= s
            return out
        if self.combiner == "min":
            return min(scores)
        if self.combiner == "max":
            return max(scores)
        return sum(scores) / len(scores)  # avg

    def upper_bound(self, evaluated: Mapping[str, float]) -> float:
        """``F_P[t]`` of Property 1: real scores for evaluated predicates,
        ``p_max`` for the rest.

        ``evaluated`` maps predicate name to score; predicates absent from
        the mapping are assumed unevaluated.
        """
        scores = [
            evaluated.get(p.name, p.p_max) for p in self.predicates
        ]
        return self.combine(scores)

    def final_score(self, evaluated: Mapping[str, float]) -> float:
        """The complete score; requires every predicate to be evaluated."""
        missing = [p.name for p in self.predicates if p.name not in evaluated]
        if missing:
            raise ValueError(f"missing predicate scores: {missing}")
        return self.combine([evaluated[p.name] for p in self.predicates])

    def max_possible(self) -> float:
        """``F_phi`` — the upper bound with nothing evaluated."""
        return self.upper_bound({})

    def subset(self, names: Iterable[str]) -> tuple[RankingPredicate, ...]:
        """The predicate objects for a set of names (order of declaration)."""
        wanted = set(names)
        unknown = wanted - set(self._by_name)
        if unknown:
            raise KeyError(f"unknown predicates: {sorted(unknown)}")
        return tuple(p for p in self.predicates if p.name in wanted)


def sum_of(*predicates: RankingPredicate) -> ScoringFunction:
    """Shorthand for the paper's default summation scoring function."""
    return ScoringFunction(list(predicates), combiner="sum")
