"""Bind variables: parameter placeholders and their per-statement slots.

A parameterized statement (``WHERE h.price <= ?`` or ``<= :max_price``)
binds to the same :class:`~repro.optimizer.query_spec.QuerySpec` shape for
every constant — the placeholder becomes a :class:`Parameter` expression
node whose compiled evaluator reads a *slot* instead of a baked-in literal.
All placeholders of one statement share a :class:`ParameterSlots` object,
owned by the spec; executing the statement writes values into the slots
(:meth:`ParameterSlots.bind`) and the shared compiled closures pick them up
at evaluation time.

This is what turns the plan cache from exact-text reuse into *template*
reuse: the cache key covers the parameter structure (which slots exist),
never the bound values, so one cached plan serves every binding.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..storage.schema import DataType, Schema
from .expressions import Evaluator, Expression

#: placeholder styles (one statement may use only one)
POSITIONAL = "positional"
NAMED = "named"


class ParameterError(Exception):
    """Raised on parameter problems: missing, extra or mistyped bindings,
    mixing placeholder styles, or evaluating an unbound slot."""


def style_of(key: str) -> str:
    """The placeholder style of a slot key (``"?3"`` → positional)."""
    return POSITIONAL if key.startswith("?") else NAMED


class ParameterSlots:
    """The ordered parameter slots of one statement template.

    Keys are ``"?1"``, ``"?2"``, … for positional placeholders (ordinal by
    occurrence) and ``":name"`` for named ones (a repeated name shares one
    slot).  Each slot may carry *expected types* inferred by the binder
    (e.g. a parameter compared against a FLOAT column expects a number);
    :meth:`bind` validates bindings against them and rejects missing or
    extra values with the offending keys spelled out.

    Values live here — not in the expression tree and not in the plan — so
    a cached template plan stays value-free and every execution simply
    rebinds.  Bindings are read *during* execution; batch runs are atomic,
    and cursors snapshot their bindings at open and :meth:`restore` them
    before every fetch, so interleaved executions of one template stay
    isolated from each other.
    """

    __slots__ = ("_keys", "_style", "_expected", "_values")

    def __init__(self) -> None:
        self._keys: list[str] = []
        self._style: str | None = None
        self._expected: dict[str, set[DataType]] = {}
        self._values: dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __repr__(self) -> str:
        return f"ParameterSlots({', '.join(self._keys) or 'none'})"

    @property
    def keys(self) -> tuple[str, ...]:
        """Slot keys in declaration (first-occurrence) order."""
        return tuple(self._keys)

    @property
    def style(self) -> str | None:
        """``"positional"`` | ``"named"`` | None (no parameters)."""
        return self._style

    # ------------------------------------------------------------------
    # declaration (binder-side)
    # ------------------------------------------------------------------
    def declare(self, key: str) -> str:
        """Register a slot key; repeated named keys collapse to one slot."""
        style = style_of(key)
        if self._style is None:
            self._style = style
        elif self._style != style:
            raise ParameterError(
                "cannot mix positional (?) and named (:name) parameters "
                "in one statement"
            )
        if key not in self._keys:
            self._keys.append(key)
        return key

    def expect(self, key: str, dtype: DataType) -> None:
        """Record an expected data type for a slot (binder type inference)."""
        self._expected.setdefault(key, set()).add(dtype)

    def expected(self, key: str) -> frozenset[DataType]:
        return frozenset(self._expected.get(key, ()))

    def signature(self) -> tuple:
        """The value-free cache-key component: which slots exist, in order."""
        return tuple(self._keys)

    # ------------------------------------------------------------------
    # binding (execution-side)
    # ------------------------------------------------------------------
    def bind(self, params: "Sequence[Any] | Mapping[str, Any] | None") -> None:
        """Validate and install one full set of bindings.

        Positional templates take a sequence (one value per ``?``, in
        order); named templates take a mapping (keys with or without the
        leading colon).  Raises :class:`ParameterError` on missing or extra
        values and on type mismatches against the binder's expectations.
        """
        if not self._keys:
            if params:
                raise ParameterError("query takes no parameters")
            return
        if params is None:
            raise ParameterError(
                f"query has {len(self._keys)} unbound parameter(s) "
                f"({', '.join(self._keys)}); pass params=... when executing"
            )
        if self._style == NAMED:
            values = self._match_named(params)
        else:
            values = self._match_positional(params)
        for key, value in values.items():
            self._check_type(key, value)
        self._values = values

    def _match_named(self, params: Any) -> dict[str, Any]:
        if not isinstance(params, Mapping):
            raise ParameterError(
                "named parameters take a mapping, e.g. params={'name': value}; "
                f"got {type(params).__name__}"
            )
        given: dict[str, Any] = {}
        for key, value in params.items():
            normalized = key if str(key).startswith(":") else f":{key}"
            if normalized in given:
                raise ParameterError(
                    f"parameter {normalized} bound twice "
                    "(bare and colon-prefixed forms of the same name)"
                )
            given[normalized] = value
        missing = [key for key in self._keys if key not in given]
        extra = sorted(set(given) - set(self._keys))
        if missing or extra:
            problems = []
            if missing:
                problems.append(f"missing {', '.join(missing)}")
            if extra:
                problems.append(f"unexpected {', '.join(extra)}")
            raise ParameterError(
                f"parameter bindings do not match the statement: "
                f"{'; '.join(problems)} (expected {', '.join(self._keys)})"
            )
        return {key: given[key] for key in self._keys}

    def _match_positional(self, params: Any) -> dict[str, Any]:
        if isinstance(params, Mapping):
            raise ParameterError(
                "positional parameters take a sequence, e.g. params=[v1, v2]; "
                "got a mapping"
            )
        if isinstance(params, (str, bytes)) or not isinstance(params, Sequence):
            raise ParameterError(
                "positional parameters take a sequence, e.g. params=[v1, v2]; "
                f"got {type(params).__name__}"
            )
        supplied = list(params)
        if len(supplied) != len(self._keys):
            raise ParameterError(
                f"query takes {len(self._keys)} positional parameter(s), "
                f"got {len(supplied)}"
            )
        return dict(zip(self._keys, supplied))

    def _check_type(self, key: str, value: Any) -> None:
        """Any-of validation: a slot compared against differently-typed
        contexts (``name = :x OR price = :x``) accepts a value matching
        any one of them; only a value matching none is rejected."""
        expected = self._expected.get(key)
        if not expected:
            return
        if any(dtype.validate(value) for dtype in expected):
            return
        wanted = " or ".join(sorted(dtype.value for dtype in expected))
        raise ParameterError(
            f"parameter {key} expects {wanted}, "
            f"got {value!r} ({type(value).__name__})"
        )

    def clear(self) -> None:
        """Drop current bindings (slots become unbound again)."""
        self._values = {}

    @property
    def is_bound(self) -> bool:
        """Whether every slot currently holds a value."""
        return all(key in self._values for key in self._keys)

    def value(self, key: str) -> Any:
        """The current binding of a slot (evaluation-time read)."""
        try:
            return self._values[key]
        except KeyError:
            raise ParameterError(
                f"parameter {key} is unbound; pass params=... when executing"
            ) from None

    def current(self) -> dict[str, Any]:
        """A snapshot of the current bindings (for introspection, and for
        per-execution restore — see :meth:`restore`)."""
        return dict(self._values)

    def restore(self, values: Mapping[str, Any]) -> None:
        """Reinstall a snapshot previously taken with :meth:`current`.

        This is how interleaved executions of one template stay isolated:
        a cursor snapshots its (already validated) bindings at open and
        restores them before every fetch, so later runs of the same
        template cannot silently change an open cursor's predicate.
        """
        self._values = dict(values)


class Parameter(Expression):
    """A bind-variable placeholder inside an expression tree.

    Compiles to a closure that reads its slot *at evaluation time*, so the
    same compiled (and cached) evaluator serves every binding of the
    template.  A parameter references no columns, and its cache-key token
    is the slot key alone — never a value (see
    :func:`repro.planner.signature.expression_key`).
    """

    __slots__ = ("key", "slots")

    def __init__(self, key: str, slots: ParameterSlots):
        self.key = key
        self.slots = slots

    def compile(self, schema: Schema) -> Evaluator:
        slots = self.slots
        key = self.key
        return lambda row: slots.value(key)

    def __repr__(self) -> str:
        return self.key


def bind_slots(
    slots: ParameterSlots | None,
    params: "Sequence[Any] | Mapping[str, Any] | None",
) -> None:
    """Bind values into a (possibly absent) slot set.

    The shared entry point of every execution path: validates that
    non-parameterized statements receive no bindings and that parameterized
    ones receive a complete, well-typed set.
    """
    if slots is None or not slots:
        if params:
            raise ParameterError("query takes no parameters")
        return
    slots.bind(params)
