"""Synthetic workloads: the §6 data generator and the Figure-11 plans."""

from .distributions import DISTRIBUTIONS, cosine, normal, sampler, uniform
from .fig11 import ALL_PLANS, plan1, plan2, plan3, plan4
from .generator import (
    DEFAULT_DISTRIBUTIONS,
    PREDICATE_LAYOUT,
    Workload,
    WorkloadConfig,
    build_workload,
)

__all__ = [
    "ALL_PLANS",
    "DEFAULT_DISTRIBUTIONS",
    "DISTRIBUTIONS",
    "PREDICATE_LAYOUT",
    "Workload",
    "WorkloadConfig",
    "build_workload",
    "cosine",
    "normal",
    "plan1",
    "plan2",
    "plan3",
    "plan4",
    "sampler",
    "uniform",
]
