"""The four hand-built execution plans of Figure 11.

These are the plans the paper's §6.1 experiments execute for query Q:

* **plan1** — the traditional materialize-then-sort plan: interesting-order
  index scans, filters, two sort-merge joins, blocking sort on the complete
  scoring function.
* **plan2** — the fully rank-aware plan: rank-scans on every predicate's
  index, µ operators scheduled before the joins, two HRJN rank-joins.
* **plan3** — like plan2 but accesses B by sequential scan, evaluating both
  of B's predicates with µ operators.
* **plan4** — hybrid: a normal sort-merge join of A and B with the four µ
  operators applied above it, then an HRJN with C's rank-scan.

Each builder takes a :class:`~repro.workloads.generator.Workload` and
returns a :class:`~repro.optimizer.plans.PlanNode` (topped by λ_k).
"""

from __future__ import annotations

from ..algebra.predicates import BooleanPredicate
from ..optimizer.plans import (
    ColumnOrderScanPlan,
    FilterPlan,
    HRJNPlan,
    LimitPlan,
    MuPlan,
    PlanNode,
    RankScanPlan,
    SeqScanPlan,
    SortMergeJoinPlan,
    SortPlan,
)
from .generator import Workload


def _selection(workload: Workload, name: str) -> BooleanPredicate:
    for condition in workload.spec.selections:
        if condition.name == name:
            return condition
    raise KeyError(f"no selection {name!r} in workload")


def plan1(workload: Workload, k: int | None = None) -> PlanNode:
    """Traditional plan: SMJ ⋈ SMJ under a blocking sort (Figure 11a)."""
    k = workload.config.k if k is None else k
    a = FilterPlan(ColumnOrderScanPlan("A", "A.jc1"), _selection(workload, "A.b"))
    b = FilterPlan(ColumnOrderScanPlan("B", "B.jc1"), _selection(workload, "B.b"))
    ab = SortMergeJoinPlan(a, b, "A.jc1", "B.jc1")
    c = ColumnOrderScanPlan("C", "C.jc2")
    abc = SortMergeJoinPlan(ab, c, "B.jc2", "C.jc2")
    ranked = SortPlan(abc, frozenset(workload.scoring.predicate_names))
    return LimitPlan(ranked, k)


def plan2(workload: Workload, k: int | None = None, threshold_mode: str = "drawn") -> PlanNode:
    """Fully rank-aware plan: rank-scans, µ before joins, HRJN (Figure 11b)."""
    k = workload.config.k if k is None else k
    a = MuPlan(
        FilterPlan(RankScanPlan("A", "f1"), _selection(workload, "A.b")),
        "f2",
        threshold_mode,
    )
    b = MuPlan(
        FilterPlan(RankScanPlan("B", "f3"), _selection(workload, "B.b")),
        "f4",
        threshold_mode,
    )
    ab = HRJNPlan(a, b, "A.jc1", "B.jc1", threshold_mode)
    c = RankScanPlan("C", "f5")
    abc = HRJNPlan(ab, c, "B.jc2", "C.jc2", threshold_mode)
    return LimitPlan(abc, k)


def plan3(workload: Workload, k: int | None = None, threshold_mode: str = "drawn") -> PlanNode:
    """Plan2 with B accessed by sequential scan + µ_f3 µ_f4 (Figure 11c)."""
    k = workload.config.k if k is None else k
    a = MuPlan(
        FilterPlan(RankScanPlan("A", "f1"), _selection(workload, "A.b")),
        "f2",
        threshold_mode,
    )
    b = MuPlan(
        MuPlan(
            FilterPlan(SeqScanPlan("B"), _selection(workload, "B.b")),
            "f3",
            threshold_mode,
        ),
        "f4",
        threshold_mode,
    )
    ab = HRJNPlan(a, b, "A.jc1", "B.jc1", threshold_mode)
    c = RankScanPlan("C", "f5")
    abc = HRJNPlan(ab, c, "B.jc2", "C.jc2", threshold_mode)
    return LimitPlan(abc, k)


def plan4(workload: Workload, k: int | None = None, threshold_mode: str = "drawn") -> PlanNode:
    """Hybrid plan: µ's above a sort-merge join of A⋈B, HRJN with C
    (Figure 11d)."""
    k = workload.config.k if k is None else k
    a = FilterPlan(ColumnOrderScanPlan("A", "A.jc1"), _selection(workload, "A.b"))
    b = FilterPlan(ColumnOrderScanPlan("B", "B.jc1"), _selection(workload, "B.b"))
    ab = SortMergeJoinPlan(a, b, "A.jc1", "B.jc1")
    ranked = ab
    for predicate_name in ("f1", "f2", "f3", "f4"):
        ranked = MuPlan(ranked, predicate_name, threshold_mode)
    c = RankScanPlan("C", "f5")
    abc = HRJNPlan(ranked, c, "B.jc2", "C.jc2", threshold_mode)
    return LimitPlan(abc, k)


ALL_PLANS = {
    "plan1": plan1,
    "plan2": plan2,
    "plan3": plan3,
    "plan4": plan4,
}
