"""Score distributions for the synthetic workload (§6).

The paper draws ranking-predicate scores in ``[0, 1]`` independently from
uniform, normal (mean 0.5, variance 0.16) and cosine distributions.  All
samplers take a seeded :class:`random.Random` for determinism and clamp to
``[0, 1]``.
"""

from __future__ import annotations

import math
import random
from typing import Callable

Sampler = Callable[[random.Random], float]


def uniform(rng: random.Random) -> float:
    """U(0, 1)."""
    return rng.random()


def normal(rng: random.Random) -> float:
    """Normal with mean 0.5 and variance 0.16 (σ = 0.4), clamped to [0, 1]."""
    value = rng.gauss(0.5, 0.4)
    return min(1.0, max(0.0, value))


def cosine(rng: random.Random) -> float:
    """Raised-cosine distribution on [0, 1] via inverse-CDF sampling.

    Density ``f(x) = 1 + cos(2πx − π)`` — mass concentrated around 0.5,
    vanishing at the endpoints; CDF ``F(x) = x + sin(2πx − π)/(2π)``,
    inverted numerically (bisection; the CDF is strictly increasing).
    """
    u = rng.random()
    lo, hi = 0.0, 1.0
    for __ in range(40):
        mid = (lo + hi) / 2
        if _cosine_cdf(mid) < u:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def _cosine_cdf(x: float) -> float:
    return x + math.sin(2 * math.pi * x - math.pi) / (2 * math.pi)


DISTRIBUTIONS: dict[str, Sampler] = {
    "uniform": uniform,
    "normal": normal,
    "cosine": cosine,
}


def sampler(name: str) -> Sampler:
    """Look up a distribution sampler by name."""
    try:
        return DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; choose from {sorted(DISTRIBUTIONS)}"
        ) from None
