"""The §6 synthetic workload.

Three tables ``A``, ``B``, ``C`` of equal size and schema
``(jc1, jc2, b, p1, p2)``:

* ``jc1``/``jc2`` — join columns; the number of distinct values is
  ``round(1 / join_selectivity)``, giving the paper's join selectivities
  ``j ∈ [1e-5, 1e-3]``;
* ``b`` — Boolean attribute with selectivity 0.4 (used by A and B);
* ``p1``/``p2`` — inputs of the ranking predicates.

Five ranking predicates of equal, configurable cost: ``f1(A.p1)``,
``f2(A.p2)``, ``f3(B.p1)``, ``f4(B.p2)``, ``f5(C.p1)``; scores drawn
independently from uniform / normal / cosine distributions.  The query is
the paper's Q::

    SELECT * FROM A, B, C
    WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b
    ORDER BY f1(A.p1)+f2(A.p2)+f3(B.p1)+f4(B.p2)+f5(C.p1)
    LIMIT k
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..algebra.expressions import col
from ..algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from ..engine.database import Database
from ..optimizer.query_spec import JoinCondition, QuerySpec
from ..storage.schema import DataType
from .distributions import sampler

#: distribution per predicate, cycling through the three families
DEFAULT_DISTRIBUTIONS = {
    "f1": "uniform",
    "f2": "normal",
    "f3": "cosine",
    "f4": "uniform",
    "f5": "normal",
}


@dataclass
class WorkloadConfig:
    """Parameters of the §6 workload (paper defaults, scaled by callers)."""

    table_size: int = 100_000
    join_selectivity: float = 1e-4
    bool_selectivity: float = 0.4
    predicate_cost: float = 1.0
    #: busy-work iterations per predicate evaluation and unit of cost —
    #: nonzero makes predicate cost visible in wall time, not only in the
    #: simulated-cost metrics (used for wall-clock-faithful runs)
    spin_loops_per_cost: int = 0
    k: int = 10
    seed: int = 42
    distributions: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_DISTRIBUTIONS)
    )

    @property
    def distinct_join_values(self) -> int:
        return max(1, round(1.0 / self.join_selectivity))


@dataclass
class Workload:
    """A generated workload: database, predicates, scoring, and the query."""

    config: WorkloadConfig
    database: Database
    predicates: dict[str, RankingPredicate]
    scoring: ScoringFunction
    spec: QuerySpec

    @property
    def catalog(self):
        return self.database.catalog


#: predicate name -> (table, score column)
PREDICATE_LAYOUT = {
    "f1": ("A", "A.p1"),
    "f2": ("A", "A.p2"),
    "f3": ("B", "B.p1"),
    "f4": ("B", "B.p2"),
    "f5": ("C", "C.p1"),
}


def build_workload(config: WorkloadConfig | None = None) -> Workload:
    """Generate the §6 workload deterministically from a config."""
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    db = Database()
    columns = [
        ("jc1", DataType.INT),
        ("jc2", DataType.INT),
        ("b", DataType.BOOL),
        ("p1", DataType.FLOAT),
        ("p2", DataType.FLOAT),
    ]
    distinct = config.distinct_join_values
    samplers = {
        name: sampler(config.distributions.get(name, "uniform"))
        for name in PREDICATE_LAYOUT
    }
    for table_name in ("A", "B", "C"):
        table = db.create_table(table_name, columns)
        score_names = [
            name for name, (t, __) in PREDICATE_LAYOUT.items() if t == table_name
        ]
        rows = []
        for __ in range(config.table_size):
            jc1 = rng.randrange(distinct)
            jc2 = rng.randrange(distinct)
            flag = rng.random() < config.bool_selectivity
            scores = {name: samplers[name](rng) for name in score_names}
            p1 = scores.get(score_names[0], rng.random()) if score_names else rng.random()
            p2 = (
                scores.get(score_names[1], rng.random())
                if len(score_names) > 1
                else rng.random()
            )
            rows.append((jc1, jc2, flag, p1, p2))
        table.insert_many(rows)

    predicates: dict[str, RankingPredicate] = {}
    spin = round(config.spin_loops_per_cost * config.predicate_cost)
    for name, (__, column) in PREDICATE_LAYOUT.items():
        predicates[name] = db.register_predicate(
            name, [column], lambda v: v, cost=config.predicate_cost, spin_loops=spin
        )
    scoring = ScoringFunction(
        [predicates[n] for n in ("f1", "f2", "f3", "f4", "f5")], combiner="sum"
    )

    # Access paths: rank indexes for every predicate (plan 2), column
    # indexes on the join columns (plan 1's interesting orders).
    for name, (table_name, __) in PREDICATE_LAYOUT.items():
        db.create_rank_index(table_name, name)
    db.create_column_index("A", "jc1")
    db.create_column_index("B", "jc1")
    db.create_column_index("B", "jc2")
    db.create_column_index("C", "jc2")
    db.analyze()

    spec = QuerySpec(
        tables=["A", "B", "C"],
        scoring=scoring,
        k=config.k,
        selections=[
            BooleanPredicate(col("A.b"), "A.b"),
            BooleanPredicate(col("B.b"), "B.b"),
        ],
        join_conditions=[
            JoinCondition.from_predicate(
                BooleanPredicate(col("A.jc1").eq(col("B.jc1")), "A.jc1=B.jc1")
            ),
            JoinCondition.from_predicate(
                BooleanPredicate(col("B.jc2").eq(col("C.jc2")), "B.jc2=C.jc2")
            ),
        ],
    )
    return Workload(config, db, predicates, scoring, spec)
