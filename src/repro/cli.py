"""Interactive SQL shell, one-shot query runner, and the serve command.

Usage::

    python -m repro --demo                  # interactive shell on demo data
    python -m repro --demo -c "SELECT ..."  # one query, print, exit
    python -m repro --load hotels=hotels.csv --schema "name:text,price:float" ...
    python -m repro serve --demo --port 5433 --workers 4   # TCP query server

The shell accepts the library's top-k dialect plus a few meta commands:

    \\d               list tables
    \\explain Q       show the chosen plan without executing
    \\metrics         toggle printing execution metrics
    \\cache           show planner/plan-cache statistics
    \\stats           dump the metrics registry (counters, gauges, p50/p95/p99)
    \\trace           show the last finished query trace (span tree + timings)
    \\trace on|off    enable/disable structured tracing
    \\set             list shell variables
    \\set name value  set a variable (feeds :name placeholders)
    \\unset name      remove a variable
    \\connect H:P     attach the shell to a serving database (client mode)
    \\disconnect      return to the local embedded database
    \\quit            exit

Statements may use named bind variables (``:name``): the shell supplies
values from its ``\\set`` variables, so re-running a template with a new
``\\set`` reuses the cached plan with fresh constants.

``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` open, publish and discard a
multi-statement transaction on the active backend (local session or the
connected server alike): inside one, queries read the BEGIN-time snapshot
plus the transaction's own buffered writes.  A ``COMMIT`` that loses
first-committer-wins validation reports the serialization error; retry
the transaction from ``BEGIN``.

Local statements run through one :class:`~repro.planner.Session`, so
re-running a statement reuses its prepared plan.  Reuse shows in
``\\cache`` as ``statement_hits`` (the session memoizes by SQL text, one
layer *above* the plan cache, whose ``hits`` only count fresh lookups —
e.g. from other sessions or re-preparation after data changes).

After ``\\connect host:port`` statements travel over the line-delimited
JSON protocol to a ``python -m repro serve`` process instead; ``\\cache``
then shows the *server's* shared-cache and session counters.
"""

from __future__ import annotations

import argparse
import random
import sys

from .engine.database import Database
from .observe.system_tables import is_system_query
from .sql.lexer import TokenType, tokenize
from .storage.schema import DataType

_TYPE_NAMES = {
    "int": DataType.INT,
    "float": DataType.FLOAT,
    "text": DataType.TEXT,
    "bool": DataType.BOOL,
}


#: the demo's predicate callables, by name — handed to ``load_database``
#: when reopening a durable demo directory so its rank indexes can rebind
DEMO_PREDICATES = {
    "cheap": lambda p: max(0.0, 1 - p / 400),
    "starry": lambda s: s / 5,
    "tasty": lambda p: max(0.0, 1 - p / 90),
}


def build_demo_database(
    seed: int = 7,
    parallelism: "int | str | None" = None,
    db: "Database | None" = None,
) -> Database:
    """The quickstart hotel/restaurant demo database.  Pass ``db`` to
    populate an existing (e.g. durability-attached) database instead of
    creating a fresh in-memory one."""
    rng = random.Random(seed)
    if db is None:
        db = Database(parallelism=parallelism)
    db.create_table(
        "hotel",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("stars", DataType.INT),
         ("area", DataType.INT)],
    )
    db.create_table(
        "restaurant",
        [("name", DataType.TEXT), ("cuisine", DataType.TEXT),
         ("price", DataType.FLOAT), ("area", DataType.INT)],
    )
    cuisines = ["italian", "thai", "french", "mexican"]
    db.insert(
        "hotel",
        [(f"hotel-{i}", round(rng.uniform(40, 400), 2), rng.randrange(1, 6),
          rng.randrange(10)) for i in range(500)],
    )
    db.insert(
        "restaurant",
        [(f"rest-{i}", rng.choice(cuisines), round(rng.uniform(10, 90), 2),
          rng.randrange(10)) for i in range(500)],
    )
    db.register_predicate("cheap", ["hotel.price"], DEMO_PREDICATES["cheap"])
    db.register_predicate("starry", ["hotel.stars"], DEMO_PREDICATES["starry"])
    db.register_predicate("tasty", ["restaurant.price"], DEMO_PREDICATES["tasty"])
    db.create_rank_index("hotel", "cheap")
    db.create_rank_index("restaurant", "tasty")
    db.analyze()
    return db


def _add_durability_args(parser: argparse.ArgumentParser) -> None:
    """The durability flags shared by the shell and ``serve``."""
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable database directory: recovered if it exists "
        "(checkpoint + WAL replay), created otherwise",
    )
    parser.add_argument(
        "--durability", default="auto",
        choices=("auto", "wal", "checkpoint", "none"),
        help="durability mode for --data-dir (auto = whatever the "
        "directory already uses, wal for a fresh one)",
    )
    parser.add_argument(
        "--fsync", default=None, choices=("commit", "always", "never"),
        help="WAL fsync discipline (default: the directory's, or commit)",
    )


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="log queries slower than MS as single-line JSON to stderr "
        "(default: REPRO_SLOW_QUERY_MS, off otherwise)",
    )


def open_database(args, out) -> Database:
    """The database the shell/server runs on, honouring ``--data-dir``.

    An existing directory is recovered (atomic checkpoint + WAL tail
    replay); a fresh one is created durable.  Without ``--data-dir`` the
    database is in-memory, with the demo loaded when ``--demo`` asks.
    """
    if args.data_dir is None:
        return (
            build_demo_database(parallelism=args.parallelism)
            if args.demo
            else Database(parallelism=args.parallelism)
        )
    from pathlib import Path

    from .engine.persistence import CATALOG_FILE, load_database

    path = Path(args.data_dir)
    durability = None if args.durability == "none" else args.durability
    if (path / CATALOG_FILE).exists():
        # Always offer the demo predicate callables: a directory created
        # with --demo must reopen without the flag ("run --demo --data-dir
        # trip.db" then "serve --data-dir trip.db"); unused entries are
        # ignored, and non-demo predicates still fail with the load_database
        # error telling the user to register them.
        db = load_database(
            path,
            predicates=DEMO_PREDICATES,
            persist=True,
            durability=durability,
            fsync=args.fsync,
        )
        stats = db.recovery_stats or {}
        recovered = stats.get("replayed", 0)
        print(
            f"opened {path}: {sum(1 for __ in db.catalog.tables())} table(s)"
            + (
                f", replayed {recovered} committed transaction(s) from the WAL"
                if recovered
                else ""
            ),
            file=out,
        )
        return db
    db = Database(
        persist_dir=path,
        parallelism=args.parallelism,
        durability="wal" if durability == "auto" else durability,
        fsync=args.fsync or "commit",
    )
    if args.demo:
        build_demo_database(db=db)
    print(
        f"created durable database in {path} "
        f"(durability={db.durability or 'none'}, fsync={db.fsync_mode})",
        file=out,
    )
    return db


def parse_schema(spec: str) -> list[tuple[str, DataType]]:
    """Parse ``"name:text,price:float"`` into column specs."""
    out = []
    for part in spec.split(","):
        name, __, type_name = part.strip().partition(":")
        if not name:
            raise ValueError(f"bad column spec: {part!r}")
        dtype = _TYPE_NAMES.get(type_name.strip().lower() or "float")
        if dtype is None:
            raise ValueError(f"unknown type {type_name!r} in {part!r}")
        out.append((name, dtype))
    return out


def format_result(result, show_metrics: bool = False) -> str:
    """Render a QueryResult (or a remote RemoteResult) as an aligned text
    table — remote results carry plain column names instead of a schema."""
    if hasattr(result, "schema"):
        names = result.schema.qualified_names() + ["score"]
    else:
        names = list(result.columns) + ["score"]
    rows = [
        [("" if v is None else str(v)) for v in row] + [f"{score:.4f}"]
        for row, score in zip(result.rows, result.scores)
    ]
    widths = [len(n) for n in names]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(n.ljust(w) for n, w in zip(names, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    if show_metrics:
        metrics = result.metrics
        summary = metrics.summary() if hasattr(metrics, "summary") else metrics
        lines.append(
            "metrics: "
            + ", ".join(f"{key}={value:g}" for key, value in summary.items())
        )
    return "\n".join(lines)


class ShellState:
    """Mutable shell settings + the session every statement runs through.

    ``remote`` (after ``\\connect``) redirects statements to a serving
    database over TCP; ``\\disconnect`` drops back to the local session.
    """

    def __init__(self, db: Database, show_metrics: bool = False):
        self.db = db
        self.session = db.session(sample_ratio=0.05, seed=1)
        self.show_metrics = show_metrics
        #: \set variables feeding :name placeholders
        self.variables: dict[str, object] = {}
        #: active remote session (client mode), if any
        self.remote = None

    def execute(self, sql: str, params=None):
        """Run a statement on the active backend (remote when connected)."""
        if self.remote is not None:
            return self.remote.execute(sql, params=params)
        return self.session.execute(sql, params=params)

    def explain(self, sql: str, params=None) -> str:
        if self.remote is not None:
            return self.remote.explain(sql, params=params)
        return self.session.explain(sql, params=params)

    def begin(self):
        """Open a transaction on the active backend; returns its id."""
        if self.remote is not None:
            return self.remote.begin()
        return self.session.begin().txn_id

    def commit(self) -> int:
        """Commit the open transaction; returns the commit sequence."""
        if self.remote is not None:
            return self.remote.commit()
        return self.session.commit()

    def rollback(self) -> None:
        if self.remote is not None:
            self.remote.rollback()
        else:
            self.session.rollback()

    def disconnect(self) -> None:
        if self.remote is not None:
            self.remote.close()
            self.remote = None


def parse_variable_value(text: str) -> object:
    """Parse a ``\\set`` value: number, true/false, 'quoted' or bare string."""
    stripped = text.strip()
    if len(stripped) >= 2 and stripped[0] == "'" and stripped[-1] == "'":
        return stripped[1:-1]
    lowered = stripped.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


def statement_params(state: ShellState, sql: str) -> "dict[str, object] | None":
    """Bindings for a statement's ``:name`` placeholders from ``\\set``
    variables; None for literal statements.  Raises ``ValueError`` with a
    shell-appropriate message for ``?`` placeholders or unset variables."""
    names: set[str] = set()
    for token in tokenize(sql):
        if token.type is not TokenType.PARAM:
            continue
        if token.value == "?":
            raise ValueError(
                "positional (?) parameters are not supported in the shell; "
                "use :name placeholders with \\set name value"
            )
        names.add(token.value[1:])
    if not names:
        return None
    missing = sorted(name for name in names if name not in state.variables)
    if missing:
        raise ValueError(
            f"unset parameter(s): {', '.join(missing)}; "
            f"use \\set <name> <value> first"
        )
    return {name: state.variables[name] for name in sorted(names)}


#: statements the shell routes to the transaction surface, not the planner
TXN_KEYWORDS = ("begin", "commit", "rollback")


def transaction_keyword(statement: str) -> "str | None":
    """``"begin"``/``"commit"``/``"rollback"`` when the statement is one of
    the transaction-control keywords (case-insensitive, optional ``;``)."""
    word = statement.strip().rstrip(";").strip().lower()
    return word if word in TXN_KEYWORDS else None


def run_statement(state: ShellState, statement: str, out) -> None:
    stripped = statement.strip()
    if not stripped:
        return
    if stripped.startswith("\\"):
        _meta_command(state, stripped, out)
        return
    keyword = transaction_keyword(stripped)
    if keyword == "begin":
        print(f"BEGIN (transaction {state.begin()})", file=out)
        return
    if keyword == "commit":
        print(f"COMMIT (sequence {state.commit()})", file=out)
        return
    if keyword == "rollback":
        state.rollback()
        print("ROLLBACK", file=out)
        return
    result = state.execute(stripped, params=statement_params(state, stripped))
    print(format_result(result, state.show_metrics), file=out)


def _meta_command(state: ShellState, command: str, out) -> None:
    db = state.db
    if command == "\\d":
        if state.remote is not None:
            print("\\d is unavailable in client mode (\\disconnect first)", file=out)
            return
        for table in db.catalog.tables():
            columns = ", ".join(
                f"{c.name} {c.dtype.value}" for c in table.schema
            )
            print(f"{table.name}({columns})  [{table.row_count} rows]", file=out)
        return
    if command.startswith("\\connect "):
        from .server.client import connect

        target = command[len("\\connect "):].strip()
        host, sep, port_text = target.rpartition(":")
        if not sep or not port_text.isdigit():
            print("usage: \\connect <host>:<port>", file=out)
            return
        state.disconnect()
        state.remote = connect(host or "127.0.0.1", int(port_text))
        print(
            f"connected to {target} as session {state.remote.session_id}",
            file=out,
        )
        return
    if command == "\\disconnect":
        if state.remote is None:
            print("not connected", file=out)
        else:
            state.disconnect()
            print("disconnected (back to local database)", file=out)
        return
    if command.startswith("\\explain "):
        sql = command[len("\\explain "):]
        print(state.explain(sql, params=statement_params(state, sql)), file=out)
        return
    if command == "\\set":
        if not state.variables:
            print("no variables set", file=out)
        for name in sorted(state.variables):
            print(f"{name} = {state.variables[name]!r}", file=out)
        return
    if command.startswith("\\set "):
        rest = command[len("\\set "):].strip()
        name, __, value = rest.partition(" ")
        if not name or not value.strip():
            print("usage: \\set <name> <value>", file=out)
            return
        state.variables[name] = parse_variable_value(value)
        print(f"{name} = {state.variables[name]!r}", file=out)
        return
    if command.startswith("\\unset "):
        name = command[len("\\unset "):].strip()
        if state.variables.pop(name, None) is None:
            print(f"variable {name!r} is not set", file=out)
        else:
            print(f"unset {name}", file=out)
        return
    if command == "\\metrics":
        state.show_metrics = not state.show_metrics
        print(
            f"metrics {'on' if state.show_metrics else 'off'}", file=out
        )
        return
    if command == "\\stats":
        if state.remote is not None:
            payload = state.remote.stats()
            metrics = payload.get("metrics", {})
        else:
            metrics = db.registry.collect()
        for name in sorted(metrics):
            value = metrics[name]
            if isinstance(value, dict):
                detail = ", ".join(
                    f"{key}={value[key]:g}"
                    for key in ("count", "p50", "p95", "p99")
                    if isinstance(value.get(key), (int, float))
                )
                print(f"{name}: {detail}", file=out)
            else:
                print(f"{name}: {value:g}", file=out)
        return
    if command == "\\trace" or command.startswith("\\trace "):
        argument = command[len("\\trace"):].strip().lower()
        if argument in ("on", "off"):
            if state.remote is not None:
                print("\\trace on|off controls the local tracer only", file=out)
                return
            db.tracer.enabled = argument == "on"
            print(f"tracing {argument}", file=out)
            return
        if argument:
            print("usage: \\trace [on|off]", file=out)
            return
        if state.remote is not None:
            traces = state.remote.stats(traces=1).get("traces", [])
            if not traces:
                print("no traces recorded yet", file=out)
                return
            import json

            print(json.dumps(traces[0], indent=2), file=out)
            return
        trace = db.tracer.last()
        if trace is None:
            print(
                "no traces recorded yet"
                + ("" if db.tracer.enabled else " (tracing is off)"),
                file=out,
            )
        else:
            print(trace.render(), file=out)
        return
    if command == "\\cache":
        if state.remote is not None:
            payload = state.remote.metrics()
            stats = dict(payload.get("server", {}))
            stats.update(
                (f"session_{key}", value)
                for key, value in payload.get("session", {}).items()
                if key != "session_id"
            )
            print(
                "server: "
                + ", ".join(
                    f"{key}={value:g}"
                    for key, value in sorted(stats.items())
                    if isinstance(value, (int, float))
                ),
                file=out,
            )
            return
        # Namespace each layer's counters — "invalidations" exists in both
        # the cache stats and the planner metrics.
        stats = {
            f"cache_{key}": value
            for key, value in db.planner.cache.stats.summary().items()
        }
        stats.update(
            (f"planner_{key}", value)
            for key, value in db.planner.metrics.summary().items()
        )
        stats.update(
            (f"session_{key}", value)
            for key, value in state.session.summary().items()
        )
        print(
            "planner: "
            + ", ".join(f"{key}={value:g}" for key, value in sorted(stats.items())),
            file=out,
        )
        return
    print(f"unknown meta command: {command}", file=out)


def _load_tables(db: Database, args, out) -> int:
    """Apply ``--schema``/``--load`` pairs; returns non-zero on bad specs."""
    schemas = {}
    for spec in args.schema:
        table_name, __, columns = spec.partition("=")
        schemas[table_name] = parse_schema(columns)
    for spec in args.load:
        table_name, __, path = spec.partition("=")
        if table_name not in schemas:
            print(f"--load {table_name}: missing --schema", file=out)
            return 2
        db.create_table(table_name, schemas[table_name])
        n = db.load_csv(table_name, path)
        db.analyze(table_name)
        print(f"loaded {n} rows into {table_name}", file=out)
    return 0


def serve_main(argv: list[str], out) -> int:
    """``python -m repro serve``: run the TCP query server until killed."""
    parser = argparse.ArgumentParser(
        prog="repro serve", description="RankSQL concurrent query server"
    )
    parser.add_argument("--demo", action="store_true", help="serve the demo database")
    parser.add_argument(
        "--load", action="append", default=[], metavar="TABLE=FILE.csv",
        help="load a CSV file into a new table (repeatable)",
    )
    parser.add_argument(
        "--schema", action="append", default=[], metavar="TABLE=name:type,...",
        help="schema for a --load table (types: int,float,text,bool)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=5433, help="TCP port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=4, help="worker threads")
    parser.add_argument(
        "--parallelism", default=None, metavar="N|auto",
        help="intra-query DOP ceiling (default: REPRO_PARALLELISM or 1)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve Prometheus-text GET /metrics on this port "
        "(0 = ephemeral)",
    )
    _add_durability_args(parser)
    _add_observability_args(parser)
    args = parser.parse_args(argv)

    database = open_database(args, out)
    with database as db:
        if args.slow_query_ms is not None:
            db.tracer.slow_query_ms = args.slow_query_ms
        status = _load_tables(db, args, out)
        if status:
            return status
        with db.serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            metrics_port=args.metrics_port,
        ) as server:
            host, port = server.address
            print(
                f"serving on {host}:{port} with {args.workers} workers — "
                f"connect with \\connect {host}:{port} (Ctrl-C stops)",
                file=out,
            )
            if server.metrics_port is not None:
                print(
                    f"metrics endpoint on http://{host}:{server.metrics_port}/metrics",
                    file=out,
                )
            import time

            try:
                while True:
                    time.sleep(1)
            except KeyboardInterrupt:
                # Graceful: refuse new statements, drain in-flight ones,
                # roll back open transactions, checkpoint durable state.
                print("shutting down (draining in-flight statements)", file=out)
                server.shutdown()
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:], out)
    if argv and argv[0] == "run":  # explicit alias of the default shell
        argv = argv[1:]
    parser = argparse.ArgumentParser(
        prog="repro", description="RankSQL top-k SQL shell"
    )
    parser.add_argument("--demo", action="store_true", help="load the demo database")
    parser.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="TABLE=FILE.csv",
        help="load a CSV file into a new table (repeatable)",
    )
    parser.add_argument(
        "--schema",
        action="append",
        default=[],
        metavar="TABLE=name:type,...",
        help="schema for a --load table (types: int,float,text,bool)",
    )
    parser.add_argument("-c", "--command", help="run one SQL statement and exit")
    parser.add_argument(
        "--metrics", action="store_true", help="print execution metrics per query"
    )
    parser.add_argument(
        "--parallelism", default=None, metavar="N|auto",
        help="intra-query DOP ceiling (default: REPRO_PARALLELISM or 1)",
    )
    _add_durability_args(parser)
    _add_observability_args(parser)
    args = parser.parse_args(argv)

    database = open_database(args, out)
    with database as db:
        if args.slow_query_ms is not None:
            db.tracer.slow_query_ms = args.slow_query_ms
        status = _load_tables(db, args, out)
        if status:
            return status

        state = ShellState(db, show_metrics=args.metrics)
        if args.command:
            try:
                run_statement(state, args.command, out)
            except Exception as error:  # surface engine errors as text, exit 1
                print(f"error: {error}", file=out)
                return 1
            return 0

        # Interactive loop.
        print("RankSQL shell — \\d lists tables, \\quit exits", file=out)
        buffer: list[str] = []
        while True:
            try:
                prompt = "ranksql> " if not buffer else "    ...> "
                line = input(prompt)
            except EOFError:
                break
            if line.strip() in ("\\quit", "\\q", "exit", "quit"):
                break
            if line.strip().startswith("\\") and not buffer:
                try:
                    _meta_command(state, line.strip(), out)
                except Exception as error:
                    print(f"error: {error}", file=out)
                continue
            buffer.append(line)
            joined = " ".join(buffer)
            if (
                joined.rstrip().endswith(";")
                or "limit" in joined.lower()
                or is_system_query(joined)
                or transaction_keyword(joined) is not None
            ):
                buffer.clear()
                try:
                    run_statement(state, joined.rstrip(" ;"), out)
                except Exception as error:
                    print(f"error: {error}", file=out)
        state.disconnect()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
