"""Quickstart: a top-k query over one table in a few lines.

Creates a hotel table, registers a ranking predicate (a user-defined
scoring function), builds a rank index so the engine can use a rank-scan,
and runs a top-k SQL query through the rank-aware optimizer.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import Database, DataType


def main() -> None:
    rng = random.Random(7)
    db = Database()

    db.create_table(
        "hotel",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("stars", DataType.INT)],
    )
    db.insert(
        "hotel",
        [
            (f"hotel-{i}", round(rng.uniform(40, 400), 2), rng.randrange(1, 6))
            for i in range(1000)
        ],
    )

    # Ranking predicates: normalized scores in [0, 1], each with a cost.
    db.register_predicate("cheap", ["hotel.price"], lambda p: max(0.0, 1 - p / 400))
    db.register_predicate("starry", ["hotel.stars"], lambda s: s / 5)

    # A rank index lets the optimizer read hotels in "cheap" order without
    # evaluating the predicate at query time (the paper's rank-scan).
    db.create_rank_index("hotel", "cheap")
    db.analyze()

    sql = """
        SELECT * FROM hotel
        WHERE hotel.stars >= 3
        ORDER BY cheap(hotel.price) + starry(hotel.stars)
        LIMIT 5
    """
    result = db.query(sql, sample_ratio=0.1, seed=1)

    print("Chosen plan:")
    print(result.explain())
    print()
    print(f"{'name':<12} {'price':>8} {'stars':>5} {'score':>7}")
    for record in result.to_dicts():
        print(
            f"{record['hotel.name']:<12} {record['hotel.price']:>8.2f} "
            f"{record['hotel.stars']:>5} {record['score']:>7.3f}"
        )
    print()
    print(
        f"Work done: {result.metrics.tuples_scanned} tuples scanned, "
        f"{result.metrics.predicate_evaluations} predicate evaluations "
        f"(simulated cost {result.metrics.simulated_cost:.1f} units)"
    )


if __name__ == "__main__":
    main()
