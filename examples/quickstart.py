"""Quickstart: a top-k query over one table in a few lines.

Creates a hotel table, registers a ranking predicate (a user-defined
scoring function), builds a rank index so the engine can use a rank-scan,
runs a top-k SQL query through the rank-aware optimizer, and then prepares
a parameterized statement (bind variables) so one cached plan serves many
constants.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import Database, DataType


def main() -> None:
    rng = random.Random(7)
    db = Database()

    db.create_table(
        "hotel",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("stars", DataType.INT)],
    )
    db.insert(
        "hotel",
        [
            (f"hotel-{i}", round(rng.uniform(40, 400), 2), rng.randrange(1, 6))
            for i in range(1000)
        ],
    )

    # Ranking predicates: normalized scores in [0, 1], each with a cost.
    db.register_predicate("cheap", ["hotel.price"], lambda p: max(0.0, 1 - p / 400))
    db.register_predicate("starry", ["hotel.stars"], lambda s: s / 5)

    # A rank index lets the optimizer read hotels in "cheap" order without
    # evaluating the predicate at query time (the paper's rank-scan).
    db.create_rank_index("hotel", "cheap")
    db.analyze()

    sql = """
        SELECT * FROM hotel
        WHERE hotel.stars >= 3
        ORDER BY cheap(hotel.price) + starry(hotel.stars)
        LIMIT 5
    """
    result = db.query(sql, sample_ratio=0.1, seed=1)

    print("Chosen plan:")
    print(result.explain())
    print()
    print(f"{'name':<12} {'price':>8} {'stars':>5} {'score':>7}")
    for record in result.to_dicts():
        print(
            f"{record['hotel.name']:<12} {record['hotel.price']:>8.2f} "
            f"{record['hotel.stars']:>5} {record['score']:>7.3f}"
        )
    print()
    print(
        f"Work done: {result.metrics.tuples_scanned} tuples scanned, "
        f"{result.metrics.predicate_evaluations} predicate evaluations "
        f"(simulated cost {result.metrics.simulated_cost:.1f} units)"
    )

    # -- prepared statements with bind variables -----------------------
    # `:max_price` / `:min_stars` are placeholders: the statement is
    # planned once (on the first run), and every later binding reuses the
    # cached template plan — only execution is paid.
    finder = db.prepare(
        """
        SELECT * FROM hotel
        WHERE hotel.price <= :max_price AND hotel.stars >= :min_stars
        ORDER BY cheap(hotel.price) + starry(hotel.stars)
        LIMIT 3
        """,
        sample_ratio=0.1,
        seed=1,
    )
    print()
    print("Prepared template, three bindings:")
    for max_price, min_stars in [(150.0, 3), (43.0, 1), (400.0, 5)]:
        top = finder.run(params={"max_price": max_price, "min_stars": min_stars})
        names = ", ".join(record["hotel.name"] for record in top.to_dicts())
        print(
            f"  price<={max_price:>5.0f}, stars>={min_stars}: {names} "
            f"(plan_cached={top.plan_cached})"
        )
    built = db.planner.metrics.plans_built
    print(f"Plans built for 3 bindings: {built} (template reuse)")
    assert built == 2, "expected one plan per template (ad-hoc + prepared)"


if __name__ == "__main__":
    main()
