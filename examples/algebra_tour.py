"""A tour of the rank-relational algebra on the paper's running example.

Builds the Figure 2 relations R, R' and S, then walks through:

* rank-relations and maximal-possible scores (Definition 1);
* the new µ operator and the extended σ, ∪, ∩, −, ⋈ (Figure 3/4);
* the algebraic laws (Figure 5) — splitting a monolithic sort into a µ
  chain and pushing µ across a join — checking each rewrite for
  rank-relational equivalence with the reference evaluator.

Run:  python examples/algebra_tour.py
"""

from __future__ import annotations

from repro.algebra import (
    BooleanPredicate,
    LogicalIntersect,
    LogicalJoin,
    LogicalRank,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
    RankingPredicate,
    ScoringFunction,
    col,
    evaluate_logical,
    explain,
    plans_equivalent,
)
from repro.algebra.laws import push_rank_into_join, split_sort
from repro.storage import Catalog, DataType, Schema

R_DATA = [(1, 2, 0.9, 0.65), (2, 3, 0.8, 0.5), (3, 4, 0.7, 0.7)]
R_PRIME_DATA = [(1, 2, 0.9, 0.65), (3, 4, 0.7, 0.7), (5, 1, 0.75, 0.6)]
S_DATA = [
    (4, 3, 0.7),
    (1, 1, 0.9),
    (1, 2, 0.5),
    (4, 2, 0.4),
    (5, 1, 0.3),
    (2, 3, 0.25),
]

SCORES = {(a, b): (p1, p2) for a, b, p1, p2 in R_DATA + R_PRIME_DATA}
S_SCORES = {(a, c): p3 for a, c, p3 in S_DATA}


def build() -> tuple[Catalog, ScoringFunction]:
    catalog = Catalog()
    r = catalog.create_table("R", Schema.of(("a", DataType.INT), ("b", DataType.INT)))
    r_prime = catalog.create_table(
        "R2", Schema.of(("a", DataType.INT), ("b", DataType.INT))
    )
    s = catalog.create_table("S", Schema.of(("a", DataType.INT), ("c", DataType.INT)))
    for a, b, *__ in R_DATA:
        r.insert([a, b])
    for a, b, *__ in R_PRIME_DATA:
        r_prime.insert([a, b])
    for a, c, __ in S_DATA:
        s.insert([a, c])
    p1 = RankingPredicate("p1", ["a", "b"], lambda a, b: SCORES[(a, b)][0])
    p2 = RankingPredicate("p2", ["a", "b"], lambda a, b: SCORES[(a, b)][1])
    scoring = ScoringFunction([p1, p2])
    return catalog, scoring


def show(title, relation):
    print(f"--- {title}")
    for scored in relation:
        bound = relation.scoring.upper_bound(scored.scores)
        print(f"    {scored.row.values}  F_P = {bound:.3f}  (P = {sorted(scored.scores)})")
    print()


def main() -> None:
    catalog, scoring = build()
    scan_r = LogicalScan("R", catalog.table("R").schema)
    scan_r2 = LogicalScan("R2", catalog.table("R2").schema)

    print("1. Rank-relations: evaluating p1 on R ranks it by the maximal-")
    print("   possible score F_{p1} (evaluated p1, p2 assumed at its max).\n")
    r_p1 = LogicalRank(scan_r, "p1")
    show("R_{p1} (Figure 2d)", evaluate_logical(r_p1, catalog, scoring))

    print("2. The µ operator evaluates one more predicate and reorders:\n")
    r_p1p2 = LogicalRank(r_p1, "p2")
    show("µ_p2(R_{p1}) (Figure 4a)", evaluate_logical(r_p1p2, catalog, scoring))

    print("3. Binary operators merge the evaluated sets of their operands:\n")
    union = LogicalUnion(r_p1, LogicalRank(scan_r2, "p2"))
    show("R_{p1} ∪ R'_{p2} (Figure 4d)", evaluate_logical(union, catalog, scoring))
    intersection = LogicalIntersect(r_p1, LogicalRank(scan_r2, "p2"))
    show("R_{p1} ∩ R'_{p2} (Figure 4c)", evaluate_logical(intersection, catalog, scoring))

    print("4. Proposition 1 (splitting): τ_F(R) ≡ µ_p1(µ_p2(R)).")
    sort_plan = LogicalSort(scan_r, scoring)
    split = split_sort(sort_plan, scoring)
    print(explain(split))
    ok = plans_equivalent(sort_plan, split, catalog, scoring)
    print(f"   rank-relationally equivalent: {ok}\n")

    print("5. Proposition 5 (interleaving): µ pushes below a join when its")
    print("   attributes come from one side.")
    q1 = RankingPredicate("q1", ["R.a", "R.b"], lambda a, b: SCORES[(a, b)][0])
    q3 = RankingPredicate("q3", ["S.a", "S.c"], lambda a, c: S_SCORES[(a, c)])
    join_scoring = ScoringFunction([q1, q3])
    condition = BooleanPredicate(col("R.a").eq(col("S.a")), "R.a=S.a")
    join = LogicalJoin(scan_r, LogicalScan("S", catalog.table("S").schema), condition)
    above = LogicalRank(join, "q1")
    pushed = push_rank_into_join(above, join_scoring)
    print("   before:")
    print(explain(above))
    print("   after:")
    print(explain(pushed))
    ok = plans_equivalent(above, pushed, catalog, join_scoring)
    print(f"   rank-relationally equivalent: {ok}")


if __name__ == "__main__":
    main()
