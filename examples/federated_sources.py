"""Rank-aware set operations: merging ranked results from two sources.

The extended algebra makes ∪, ∩ and − rank-aware and *incremental* (§4.2):
with ranked inputs, the operators can emit early instead of exhausting both
sides to rule out duplicates.

Scenario: two union-compatible catalogues of the same product space (two
regional warehouses).  We ask three questions through hand-built logical
plans executed via the rule-based optimizer path:

* top products available in *either* warehouse        (union),
* top products available in *both*                    (intersection),
* top products exclusive to warehouse 1               (difference).

Run:  python examples/federated_sources.py
"""

from __future__ import annotations

import random

from repro import Database, DataType
from repro.algebra import ScoringFunction
from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalLimit,
    LogicalRank,
    LogicalScan,
    LogicalUnion,
)
from repro.optimizer import QuerySpec


def build() -> tuple[Database, ScoringFunction]:
    rng = random.Random(29)
    db = Database()
    for name in ("warehouse1", "warehouse2"):
        db.create_table(
            name, [("product", DataType.TEXT), ("margin", DataType.FLOAT)]
        )
    products = [(f"product-{i}", round(rng.random(), 3)) for i in range(80)]
    db.insert("warehouse1", products[:55])
    db.insert("warehouse2", products[35:])
    # Predicates on the *bare* column so they evaluate on either operand.
    profit = db.register_predicate("profit", ["margin"], lambda m: m, cost=1.0)
    velocity = db.register_predicate(
        "velocity", ["margin"], lambda m: 1 - m / 2, cost=1.0
    )
    db.analyze()
    return db, ScoringFunction([profit, velocity])


def ranked_inputs(db: Database):
    w1 = LogicalRank(
        LogicalScan("warehouse1", db.catalog.table("warehouse1").schema), "profit"
    )
    w2 = LogicalRank(
        LogicalScan("warehouse2", db.catalog.table("warehouse2").schema), "velocity"
    )
    return w1, w2


def main() -> None:
    db, scoring = build()
    spec = QuerySpec(tables=["warehouse1"], scoring=scoring, k=5)
    w1, w2 = ranked_inputs(db)

    questions = [
        ("available anywhere (∪)", LogicalUnion(w1, w2)),
        ("available in both (∩)", LogicalIntersect(w1, w2)),
        ("exclusive to warehouse 1 (−)", LogicalDifference(w1, w2)),
    ]
    for title, set_plan in questions:
        plan = LogicalLimit(set_plan, 5)
        result = db.query_logical(
            plan, spec, sample_ratio=0.3, seed=2, max_plans=30
        )
        print(f"Top 5 {title}:")
        for row, score in zip(result.rows, result.scores):
            print(f"  {row[0]:<12} score={score:.3f}")
        m = result.metrics
        print(
            f"  (scanned {m.tuples_scanned} tuples, "
            f"{m.predicate_evaluations} predicate evaluations)\n"
        )


if __name__ == "__main__":
    main()
