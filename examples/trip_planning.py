"""Example 1 from the paper: Amy plans a trip to Chicago.

Three tables — Hotel, Restaurant, Museum — a Boolean selection (Italian
cuisine), a Boolean join (hotel + restaurant under $100), an equi-join
(restaurant and museum in the same area), and three ranking predicates:

    p1: cheap(h.price)                 — rank-selection on Hotel
    p2: close(h.addr, r.addr)          — rank-join over Hotel × Restaurant
    p3: related(m.collection, topic)   — rank-selection on Museum

The script runs the query through the rank-aware optimizer and through the
traditional materialize-then-sort baseline, verifies the answers match, and
compares the work both plans did.

Run:  python examples/trip_planning.py
"""

from __future__ import annotations

import random

from repro import Database, DataType

AREAS = 25
CUISINES = ["Italian", "Thai", "French", "Mexican", "Japanese"]
COLLECTIONS = ["dinosaur", "impressionism", "space", "egypt", "modern art"]


def build_city(db: Database, n: int, seed: int) -> None:
    rng = random.Random(seed)
    db.create_table(
        "Hotel",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("addr", DataType.INT)],
    )
    db.create_table(
        "Restaurant",
        [
            ("name", DataType.TEXT),
            ("cuisine", DataType.TEXT),
            ("price", DataType.FLOAT),
            ("addr", DataType.INT),
            ("area", DataType.INT),
        ],
    )
    db.create_table(
        "Museum",
        [("name", DataType.TEXT), ("collection", DataType.TEXT), ("area", DataType.INT)],
    )
    db.insert(
        "Hotel",
        [
            (f"hotel-{i}", round(rng.uniform(50, 250), 2), rng.randrange(100))
            for i in range(n)
        ],
    )
    db.insert(
        "Restaurant",
        [
            (
                f"rest-{i}",
                rng.choice(CUISINES),
                round(rng.uniform(10, 80), 2),
                rng.randrange(100),
                rng.randrange(AREAS),
            )
            for i in range(n)
        ],
    )
    db.insert(
        "Museum",
        [
            (f"museum-{i}", rng.choice(COLLECTIONS), rng.randrange(AREAS))
            for i in range(n // 2)
        ],
    )


def register_predicates(db: Database) -> None:
    # p1: cheap hotels.  Cheap to evaluate (simple arithmetic).
    db.register_predicate(
        "cheap", ["Hotel.price"], lambda p: max(0.0, 1 - p / 250), cost=1.0
    )
    # p2: hotel near the restaurant — a rank-JOIN predicate spanning two
    # tables; modeled as address distance, moderately expensive
    # (imagine a geo lookup).
    db.register_predicate(
        "close",
        ["Hotel.addr", "Restaurant.addr"],
        lambda a, b: max(0.0, 1 - abs(a - b) / 100),
        cost=5.0,
    )
    # p3: museum relevance to Amy's interests — an IR-style predicate,
    # the most expensive of the three.
    db.register_predicate(
        "related",
        ["Museum.collection"],
        lambda c: 1.0 if c == "dinosaur" else (0.4 if c == "space" else 0.1),
        cost=10.0,
    )
    db.create_rank_index("Hotel", "cheap")
    db.create_rank_index("Museum", "related")
    db.create_column_index("Restaurant", "area")
    db.create_column_index("Museum", "area")
    db.analyze()


def main() -> None:
    db = Database()
    build_city(db, n=400, seed=11)
    register_predicates(db)

    sql = """
        SELECT * FROM Hotel h, Restaurant r, Museum m
        WHERE r.cuisine = 'Italian'
          AND h.price + r.price < 100
          AND r.area = m.area
        ORDER BY cheap(h.price) + close(h.addr, r.addr) + related(m.collection)
        LIMIT 5
    """

    ranked = db.query(sql, sample_ratio=0.1, seed=3)
    print("Rank-aware plan:")
    print(ranked.explain())
    print()

    spec = db.bind(sql)
    traditional_plan = db.plan_traditional(sql, sample_ratio=0.1, seed=3)
    traditional = db.execute(traditional_plan, spec.scoring, k=spec.k)
    print("Traditional (materialize-then-sort) plan:")
    print(traditional.explain())
    print()

    assert [round(s, 9) for s in ranked.scores] == [
        round(s, 9) for s in traditional.scores
    ], "the two plans must agree on the top-k"

    print("Top trips (hotel, restaurant, museum):")
    for record in ranked.to_dicts():
        print(
            f"  {record['Hotel.name']:<10} + {record['Restaurant.name']:<9} "
            f"+ {record['Museum.name']:<11} score={record['score']:.3f}"
        )
    print()

    for label, result in (("rank-aware", ranked), ("traditional", traditional)):
        m = result.metrics
        print(
            f"{label:>12}: scanned={m.tuples_scanned:>7} "
            f"pred-evals={m.predicate_evaluations:>7} "
            f"pred-cost={m.predicate_cost_units:>9.0f} "
            f"total={m.simulated_cost:>10.0f} units"
        )
    speedup = traditional.metrics.simulated_cost / max(ranked.metrics.simulated_cost, 1)
    print(f"\nRank-aware plan does ~{speedup:.0f}x less work for the top-5.")


if __name__ == "__main__":
    main()
