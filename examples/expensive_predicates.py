"""Expensive ranking predicates: the paper's Web-database motivation.

§2.1 motivates predicates that are costly to evaluate — live price lookups,
geographic distance services, IR relevance functions.  The rank-aware
algebra evaluates such predicates *only when they can affect the result
order*, instead of on every materialized row.

This example models a product search where one predicate is a cheap local
attribute and the other simulates an expensive remote call (cost 200 units
vs 1), and shows how the evaluation counts — and therefore the total cost —
diverge between the traditional plan and the rank-aware plan as k shrinks.

Run:  python examples/expensive_predicates.py
"""

from __future__ import annotations

import random

from repro import Database, DataType


def build(db: Database, n: int, seed: int) -> None:
    rng = random.Random(seed)
    db.create_table(
        "product",
        [
            ("sku", DataType.TEXT),
            ("list_price", DataType.FLOAT),
            ("popularity", DataType.FLOAT),
        ],
    )
    db.insert(
        "product",
        [
            (f"sku-{i}", round(rng.uniform(5, 500), 2), rng.random())
            for i in range(n)
        ],
    )
    # Cheap local predicate with a rank index: read in popularity order.
    db.register_predicate("popular", ["product.popularity"], lambda p: p, cost=1.0)
    db.create_rank_index("product", "popular")
    # Expensive "remote" predicate: imagine fetching the live discounted
    # price from a partner API — 200 cost units per call.
    db.register_predicate(
        "discounted",
        ["product.list_price"],
        lambda price: max(0.0, 1 - price / 500),
        cost=200.0,
    )
    db.analyze()


def main() -> None:
    db = Database()
    build(db, n=5000, seed=23)

    print(f"{'k':>6} {'plan':>12} {'remote calls':>13} {'total cost':>12}")
    for k in (1, 10, 100):
        sql = (
            "SELECT * FROM product "
            "ORDER BY popular(product.popularity) + discounted(product.list_price) "
            f"LIMIT {k}"
        )
        ranked = db.query(sql, sample_ratio=0.02, seed=5)
        spec = db.bind(sql)
        traditional = db.execute(
            db.plan_traditional(sql, sample_ratio=0.02, seed=5),
            spec.scoring,
            k=spec.k,
        )
        assert [round(s, 9) for s in ranked.scores] == [
            round(s, 9) for s in traditional.scores
        ]
        for label, result in (("rank-aware", ranked), ("traditional", traditional)):
            print(
                f"{k:>6} {label:>12} {result.metrics.predicate_evaluations:>13} "
                f"{result.metrics.simulated_cost:>12.0f}"
            )

    print()
    print("The traditional plan calls the expensive predicate once per row")
    print("(5000 calls) regardless of k; the rank-aware plan calls it only")
    print("for rows whose popularity bound kept them in contention.")


if __name__ == "__main__":
    main()
