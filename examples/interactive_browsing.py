"""Incremental result browsing with cursors.

§4.1: "In interactive applications, k may be only an estimate of the
desired result size or not even specified beforehand.  Hence, it is
essentially desirable to support incremental processing for returning top
results progressively upon user requests."

This example opens a cursor on a ranking query and fetches results in
pages, printing how much work (simulated cost) each page added — the cost
grows with consumption instead of being paid upfront.  It finishes by
saving the database to disk and re-loading it.

Run:  python examples/interactive_browsing.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import Database, DataType
from repro.engine import load_database, save_database


def freshness(days_old):
    return max(0.0, 1 - days_old / 365)


def relevance(score):
    return score


def build() -> Database:
    rng = random.Random(97)
    db = Database()
    db.create_table(
        "article",
        [
            ("title", DataType.TEXT),
            ("days_old", DataType.INT),
            ("match_score", DataType.FLOAT),
        ],
    )
    db.insert(
        "article",
        [
            (f"article-{i}", rng.randrange(365), round(rng.random(), 3))
            for i in range(4000)
        ],
    )
    db.register_predicate("fresh", ["article.days_old"], freshness, cost=1.0)
    db.register_predicate("relevant", ["article.match_score"], relevance, cost=1.0)
    db.create_rank_index("article", "relevant")
    db.analyze()
    return db


def main() -> None:
    db = build()
    sql = """
        SELECT * FROM article
        ORDER BY relevant(article.match_score) + fresh(article.days_old)
        LIMIT 10
    """
    print("Browsing results page by page (the LIMIT is just a hint):\n")
    with db.open_cursor(sql, sample_ratio=0.02, seed=9) as cursor:
        previous_cost = 0.0
        for page in range(1, 4):
            rows = []
            for __ in range(5):
                pair = cursor.fetch_next_scored()
                if pair is None:
                    break
                rows.append(pair)
            cost = cursor.metrics.simulated_cost
            print(f"--- page {page} (+{cost - previous_cost:.0f} cost units)")
            for (title, days_old, match), score in rows:
                print(f"    {title:<14} age={days_old:>3}d match={match:.2f} "
                      f"score={score:.3f}")
            previous_cost = cost
        print(
            f"\nTotal work after 15 results: {previous_cost:.0f} units "
            f"({cursor.metrics.tuples_scanned} of 4000 tuples scanned)"
        )

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "articles_db"
        save_database(db, target)
        restored = load_database(
            target, predicates={"fresh": freshness, "relevant": relevance}
        )
        result = restored.query(sql, sample_ratio=0.02, seed=9)
        print(f"\nReloaded from {target.name}: top result is "
              f"{result.rows[0][0]} (score {result.scores[0]:.3f})")


if __name__ == "__main__":
    main()
