"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Threshold mode**: paper-faithful "drawn" emission thresholds (corner
  bounds from the last tuple drawn) vs the tighter "live" bounds (producer
  queue tops) — an optimization beyond the paper.
* **Rank-scan vs seq-scan + µ** (plan2 vs plan3's B-side): how much the
  precomputed index order saves.
* **HRJN vs NRJN** on the same equi-join.
* **Sampling ratio** for the cardinality estimator: accuracy of the cutoff
  x' as the sample grows.

Run:  pytest benchmarks/bench_ablation.py --benchmark-only -q -s
"""

from __future__ import annotations

import math

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import (
    CardinalityEstimator,
    HRJNPlan,
    LimitPlan,
    MuPlan,
    NRJNPlan,
    RankScanPlan,
    SampleDatabase,
    SeqScanPlan,
)
from repro.workloads import plan2

from .conftest import cached_workload, execute, record


class TestThresholdMode:
    @pytest.mark.parametrize("mode", ["drawn", "live"])
    def test_threshold_mode(self, benchmark, mode):
        workload = cached_workload()

        def run():
            return execute(
                workload,
                plan2(workload, threshold_mode=mode),
                k=workload.config.k,
            )

        __, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
        record(benchmark, metrics, mode=mode)
        print(
            f"\nthreshold={mode}: scanned={metrics.tuples_scanned} "
            f"cost={metrics.simulated_cost:.0f}"
        )

    def test_live_never_scans_more(self):
        workload = cached_workload()
        results = {}
        for mode in ("drawn", "live"):
            __, metrics = execute(
                workload, plan2(workload, threshold_mode=mode), k=workload.config.k
            )
            results[mode] = metrics.tuples_scanned
        assert results["live"] <= results["drawn"]


class TestAccessPathAblation:
    """Rank-scan vs seq-scan+µ for the same single-table signature."""

    @pytest.mark.parametrize("access", ["rank_scan", "seqscan_mu"])
    def test_access_path(self, benchmark, access):
        workload = cached_workload()
        if access == "rank_scan":
            plan = LimitPlan(MuPlan(RankScanPlan("A", "f1"), "f2"), 50)
        else:
            plan = LimitPlan(MuPlan(MuPlan(SeqScanPlan("A"), "f1"), "f2"), 50)

        def run():
            return execute(workload, plan, k=50)

        scores, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
        record(benchmark, metrics, access=access)
        assert len(scores) == 50

    def test_rank_scan_cheaper(self):
        workload = cached_workload()
        __, with_index = execute(
            workload, LimitPlan(MuPlan(RankScanPlan("A", "f1"), "f2"), 50), k=50
        )
        scores_a, __ = execute(
            workload, LimitPlan(MuPlan(RankScanPlan("A", "f1"), "f2"), 50), k=50
        )
        __, without_index = execute(
            workload,
            LimitPlan(MuPlan(MuPlan(SeqScanPlan("A"), "f1"), "f2"), 50),
            k=50,
        )
        scores_b, __ = execute(
            workload,
            LimitPlan(MuPlan(MuPlan(SeqScanPlan("A"), "f1"), "f2"), 50),
            k=50,
        )
        assert [round(s, 9) for s in scores_a] == [round(s, 9) for s in scores_b]
        assert with_index.simulated_cost < without_index.simulated_cost


class TestJoinAlgorithmAblation:
    """HRJN vs NRJN on the identical equi-join."""

    def build(self, workload, algorithm):
        a_side = MuPlan(RankScanPlan("A", "f1"), "f2")
        b_side = MuPlan(RankScanPlan("B", "f3"), "f4")
        if algorithm == "hrjn":
            join = HRJNPlan(a_side, b_side, "A.jc1", "B.jc1")
        else:
            condition = BooleanPredicate(
                col("A.jc1").eq(col("B.jc1")), "A.jc1=B.jc1"
            )
            join = NRJNPlan(a_side, b_side, condition)
        return LimitPlan(join, workload.config.k)

    @pytest.mark.parametrize("algorithm", ["hrjn", "nrjn"])
    def test_join_algorithm(self, benchmark, algorithm):
        workload = cached_workload()
        plan = self.build(workload, algorithm)

        def run():
            return execute(workload, plan, k=workload.config.k)

        __, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
        record(benchmark, metrics, algorithm=algorithm)

    def test_same_answers_hrjn_cheaper_pairs(self):
        workload = cached_workload()
        scores_h, metrics_h = execute(
            workload, self.build(workload, "hrjn"), k=workload.config.k
        )
        scores_n, metrics_n = execute(
            workload, self.build(workload, "nrjn"), k=workload.config.k
        )
        assert [round(s, 9) for s in scores_h] == [round(s, 9) for s in scores_n]
        # NRJN examines every buffered pair; HRJN only hash-colliding ones.
        assert metrics_h.join_pairs_examined < metrics_n.join_pairs_examined


class TestSelectionScheduling:
    """2-D vs 3-D enumeration with an expensive Boolean filter (§5.1
    extension): scheduling should defer the filter and cut its cost."""

    def build_spec(self, workload, filter_cost=200.0):
        from repro.optimizer import QuerySpec

        expensive = BooleanPredicate(
            col("A.jc2") < workload.config.distinct_join_values,
            "A.expensive_check",
            cost=filter_cost,
        )
        spec = workload.spec
        return QuerySpec(
            tables=spec.tables,
            scoring=spec.scoring,
            k=spec.k,
            selections=spec.selections + [expensive],
            join_conditions=spec.join_conditions,
        )

    @pytest.mark.parametrize("dimensions", ["2d", "3d"])
    def test_enumeration_dimensions(self, benchmark, dimensions):
        from repro.optimizer import RankAwareOptimizer

        workload = cached_workload(table_size=600)
        spec = self.build_spec(workload)

        def optimize_and_run():
            optimizer = RankAwareOptimizer(
                workload.catalog,
                spec,
                sample_ratio=0.1,
                seed=5,
                left_deep=True,
                enumerate_selections=(dimensions == "3d"),
            )
            plan = optimizer.optimize()
            return execute(workload, plan, k=spec.k)

        __, metrics = benchmark.pedantic(optimize_and_run, rounds=1, iterations=1)
        record(benchmark, metrics, dimensions=dimensions)
        print(
            f"\n{dimensions}: boolean_cost={metrics.boolean_cost_units:.0f} "
            f"total={metrics.simulated_cost:.0f}"
        )

    def test_3d_no_worse(self):
        from repro.optimizer import RankAwareOptimizer

        workload = cached_workload(table_size=600)
        spec = self.build_spec(workload)
        costs = {}
        for flag in (False, True):
            optimizer = RankAwareOptimizer(
                workload.catalog,
                spec,
                sample_ratio=0.1,
                seed=5,
                left_deep=True,
                enumerate_selections=flag,
            )
            plan = optimizer.optimize()
            __, metrics = execute(workload, plan, k=spec.k)
            costs[flag] = metrics.simulated_cost
        assert costs[True] <= costs[False] * 1.05


class TestSamplingRatio:
    """Cutoff-estimation accuracy vs sampling ratio (§5.2 / §6.2)."""

    def true_cutoff(self, workload):
        catalog = workload.catalog
        a_rows = [r.values for r in catalog.table("A").rows() if r.values[2]]
        b_rows = [r.values for r in catalog.table("B").rows() if r.values[2]]
        c_rows = [r.values for r in catalog.table("C").rows()]
        b_by = {}
        for row in b_rows:
            b_by.setdefault(row[0], []).append(row)
        c_by = {}
        for row in c_rows:
            c_by.setdefault(row[1], []).append(row)
        scores = []
        for a in a_rows:
            for b in b_by.get(a[0], ()):
                for c in c_by.get(b[1], ()):
                    scores.append(a[3] + a[4] + b[3] + b[4] + c[3])
        scores.sort(reverse=True)
        return scores[workload.config.k - 1]

    @pytest.mark.parametrize("ratio", [0.02, 0.05, 0.1, 0.25])
    def test_cutoff_accuracy(self, benchmark, ratio):
        workload = cached_workload()
        truth = self.true_cutoff(workload)

        def estimate():
            estimator = CardinalityEstimator(
                workload.catalog,
                workload.spec,
                sample=SampleDatabase(workload.catalog, ratio=ratio, seed=5),
            )
            return estimator.cutoff

        cutoff = benchmark.pedantic(estimate, rounds=1, iterations=1)
        error = abs(cutoff - truth) if math.isfinite(cutoff) else float("inf")
        benchmark.extra_info.update(
            {"ratio": ratio, "cutoff": cutoff, "truth": truth, "abs_error": error}
        )
        print(
            f"\nratio={ratio:.2f}: x'={cutoff if math.isfinite(cutoff) else '-inf'} "
            f"true x={truth:.3f}"
        )
        if ratio >= 0.1:
            # A decent sample must land within one predicate's range.
            assert error < 1.0
