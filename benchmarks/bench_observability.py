"""Tracing overhead gate: always-on observability must stay near-free.

PR 10's acceptance bar: with the tracer enabled (the default), a warm
parameterized workload — the cheapest per-query shape the engine has,
where fixed per-query overhead is most visible — must run within
``TRACE_MAX_OVERHEAD`` (default 1.05, i.e. ≤ 5%) of the same workload
with tracing disabled.  The measured loop covers the whole funnel each
span instruments: cache lookup, bind, execute, metrics fold, feedback
fold, trace finish + ring insert.

Both halves of the comparison also assert the subsystem actually did
its job (the disabled run recorded nothing; the enabled run recorded
one trace per query with the right shape), so the gate can't pass
vacuously by measuring a tracer that silently stopped tracing.

Run:  pytest benchmarks/bench_observability.py -q -s --benchmark-disable
"""

from __future__ import annotations

import os
import random
import time

from repro.algebra.expressions import col
from repro.engine.database import Database
from repro.storage import DataType

from .conftest import record_result

#: enabled/disabled wall-clock ratio the gate tolerates (CI: 1.05)
TRACE_MAX_OVERHEAD = float(os.environ.get("TRACE_MAX_OVERHEAD", "1.05"))

ROWS = 4000
ROUNDS = 5
SQL = "SELECT * FROM T WHERE T.x > ? ORDER BY pa(T.x) LIMIT 25"
BINDINGS = [(0.3 + i * 0.04,) for i in range(12)]


def _build_database() -> Database:
    db = Database()
    db.create_table("T", [("k", DataType.INT), ("x", DataType.FLOAT)])
    rng = random.Random(11)
    db.insert("T", [(i % 64, rng.random()) for i in range(ROWS)])
    db.register_predicate("pa", ["T.x"], col("T.x") * 0.5 + 0.25)
    db.analyze()
    return db


def _warm_seconds(db: Database) -> float:
    """Best-of-ROUNDS wall time for the full warm binding sweep."""
    db.query(SQL, params=BINDINGS[0])  # populate the plan cache
    best = float("inf")
    for __ in range(ROUNDS):
        start = time.perf_counter()
        for binding in BINDINGS:
            db.query(SQL, params=binding)
        best = min(best, time.perf_counter() - start)
    return best


def test_tracing_overhead_gate():
    baseline_db = _build_database()
    baseline_db.tracer.enabled = False
    traced_db = _build_database()
    assert traced_db.tracer.enabled, "tracing must default on"

    # deltas, not absolutes: building the databases already traced the
    # setup DML while tracing was still on
    baseline_before = baseline_db.tracer.traces_started
    traced_before = traced_db.tracer.traces_finished

    baseline = _warm_seconds(baseline_db)
    traced = _warm_seconds(traced_db)

    # the disabled run must have recorded nothing at all...
    assert baseline_db.tracer.traces_started == baseline_before
    # ...and the enabled run one full trace per query, span tree intact
    assert (
        traced_db.tracer.traces_finished - traced_before
        == len(BINDINGS) * ROUNDS + 1
    )
    last = traced_db.tracer.last()
    assert last.status == "ok"
    assert "execute" in [span.name for span, __ in last.spans()]

    overhead = traced / baseline
    record_result(
        name="tracing_overhead",
        wall_seconds=traced,
        baseline_seconds=baseline,
        overhead_ratio=overhead,
        max_overhead=TRACE_MAX_OVERHEAD,
        queries_per_round=len(BINDINGS),
        rounds=ROUNDS,
        traces_recorded=traced_db.tracer.traces_finished,
    )
    print(
        f"\ntracing overhead: off={baseline * 1e3:.2f}ms "
        f"on={traced * 1e3:.2f}ms ratio={overhead:.3f} "
        f"(gate {TRACE_MAX_OVERHEAD:.2f})"
    )
    assert overhead <= TRACE_MAX_OVERHEAD, (
        f"tracing overhead {overhead:.3f}x exceeds the "
        f"{TRACE_MAX_OVERHEAD:.2f}x gate"
    )
