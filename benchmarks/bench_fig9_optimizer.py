"""Figure 9 / §5.1: plan enumeration — exhaustive 2-D DP vs heuristics.

Regenerates the enumeration behaviour of Example 5 (R ⋈ S with predicates
p1, p3, p4) and of the full §6 query (3 tables, 5 predicates):

* signatures memoized by the 2-dimensional DP,
* plans generated with and without the Figure 10 heuristics (left-deep +
  greedy µ scheduling),
* optimization wall time,
* and that the chosen plans answer the query identically.

Run:  pytest benchmarks/bench_fig9_optimizer.py --benchmark-only -q -s
"""

from __future__ import annotations

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.optimizer import RankAwareOptimizer

from .conftest import cached_workload

CONFIGS = {
    "exhaustive": dict(left_deep=False, greedy_mu=False),
    "heuristic": dict(left_deep=True, greedy_mu=True),
}

_stats: dict[str, dict] = {}


@pytest.mark.parametrize("mode", sorted(CONFIGS))
def test_fig9_enumeration(benchmark, mode):
    workload = cached_workload()

    def optimize():
        optimizer = RankAwareOptimizer(
            workload.catalog,
            workload.spec,
            sample_ratio=0.05,
            seed=3,
            **CONFIGS[mode],
        )
        plan = optimizer.optimize()
        return optimizer, plan

    optimizer, plan = benchmark.pedantic(optimize, rounds=1, iterations=1)
    context = ExecutionContext(workload.catalog, workload.scoring)
    out = run_plan(plan.build(), context, k=workload.config.k)
    scores = tuple(round(context.upper_bound(s), 9) for s in out)
    _stats[mode] = {
        "plans_generated": optimizer.plans_generated,
        "signatures": len(optimizer.memo),
        "scores": scores,
    }
    benchmark.extra_info["plans_generated"] = optimizer.plans_generated
    benchmark.extra_info["signatures"] = len(optimizer.memo)
    assert len(out) == workload.config.k


def test_fig9_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
    if len(_stats) < 2:
        pytest.skip("run the parametrized cases first")
    print("\nFigure 9 / §5.1: enumeration effort (3 tables, 5 predicates)")
    print(f"{'mode':<12} {'plans generated':>16} {'signatures':>12}")
    for mode, stats in sorted(_stats.items()):
        print(f"{mode:<12} {stats['plans_generated']:>16} {stats['signatures']:>12}")
    # Heuristics must shrink the explored space...
    assert (
        _stats["heuristic"]["plans_generated"]
        < _stats["exhaustive"]["plans_generated"]
    )
    # ... while producing a plan with the same answers.
    assert _stats["heuristic"]["scores"] == _stats["exhaustive"]["scores"]
