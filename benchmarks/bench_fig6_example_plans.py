"""Figure 6 / Examples 3–4: the three equivalent plans over table S.

Micro-benchmark of the paper's literal running example —
``SELECT * FROM S ORDER BY p3+p4+p5 LIMIT 1`` on the six-tuple relation of
Figure 2(c) — regenerating the per-plan predicate-evaluation counts of
Example 4: plan (a) 6(C3+C4+C5) = 18, plan (b) 3C4+2C5 = 5,
plan (c) 3C4+5C5 = 8.

Run:  pytest benchmarks/bench_fig6_example_plans.py --benchmark-only -q -s
"""

from __future__ import annotations

import pytest

from repro.algebra.predicates import RankingPredicate, ScoringFunction
from repro.execution import (
    ExecutionContext,
    Limit,
    Mu,
    RankScan,
    SeqScan,
    Sort,
    run_plan,
)
from repro.storage import Catalog, DataType, RankIndex, Schema

S_DATA = [
    (4, 3, 0.7, 0.8, 0.9),
    (1, 1, 0.9, 0.85, 0.8),
    (1, 2, 0.5, 0.45, 0.75),
    (4, 2, 0.4, 0.7, 0.95),
    (5, 1, 0.3, 0.9, 0.6),
    (2, 3, 0.25, 0.45, 0.9),
]
SCORES = {(a, c): (p3, p4, p5) for a, c, p3, p4, p5 in S_DATA}

EXPECTED = {
    "plan_a": {"scans": 6, "evaluations": 18},
    "plan_b": {"scans": 3, "evaluations": 5},
    "plan_c": {"scans": 5, "evaluations": 8},
}


def build_catalog():
    catalog = Catalog()
    table = catalog.create_table(
        "S", Schema.of(("a", DataType.INT), ("c", DataType.INT))
    )
    for a, c, *__ in S_DATA:
        table.insert([a, c])
    p3 = RankingPredicate("p3", ["S.a", "S.c"], lambda a, c: SCORES[(a, c)][0])
    p4 = RankingPredicate("p4", ["S.a", "S.c"], lambda a, c: SCORES[(a, c)][1])
    p5 = RankingPredicate("p5", ["S.a", "S.c"], lambda a, c: SCORES[(a, c)][2])
    scoring = ScoringFunction([p3, p4, p5])
    table.attach_index(RankIndex("S_p3", table.schema, "p3", p3.compile(table.schema)))
    return catalog, scoring


PLANS = {
    "plan_a": lambda: Limit(Sort(SeqScan("S")), 1),
    "plan_b": lambda: Mu(Mu(RankScan("S", "p3"), "p4"), "p5"),
    "plan_c": lambda: Mu(Mu(RankScan("S", "p3"), "p5"), "p4"),
}


@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_fig6(benchmark, plan_name):
    catalog, scoring = build_catalog()

    def run():
        context = ExecutionContext(catalog, scoring)
        out = run_plan(PLANS[plan_name](), context, k=1)
        return out, context

    out, context = benchmark(run)
    assert out[0].row.values == (1, 1)  # s2 is the top answer
    assert context.upper_bound(out[0]) == pytest.approx(2.55)
    expected = EXPECTED[plan_name]
    assert context.metrics.tuples_scanned == expected["scans"]
    assert context.metrics.predicate_evaluations == expected["evaluations"]
    benchmark.extra_info.update(expected)
    print(
        f"\n{plan_name}: scanned={context.metrics.tuples_scanned} "
        f"predicate_evaluations={context.metrics.predicate_evaluations} "
        f"(paper: {expected})"
    )
