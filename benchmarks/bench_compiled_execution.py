"""Plan-to-code compilation vs the interpreted batch pipeline.

PR 9's tentpole: cached plans compile their sort-topped ``P = φ``
segments into one fused Python function (:mod:`repro.execution.codegen`)
that is built once per template and re-run for every parameter binding.
This bench measures both halves of that bargain on a selective
single-table top-k — the shape where interpreter dispatch dominates:

* **cold compile** — the one-time cost of generating + ``compile()``-ing
  the fused function during ``prepare`` (amortized across every warm
  run; recorded so regressions in generated-code size show up);
* **warm parameterized reuse** — ten bindings of one template against
  ``Database(execution="batch")`` vs ``execution="compiled")``: same
  cached plan wrapper, interpreted operators vs the fused loop.  Target:
  ≥ 2× faster (``COMPILED_MIN_SPEEDUP``; CI lowers the bar via the env
  var to tolerate shared-runner noise).

Every case checks *parity*: identical rows, scores and rid tie order
between the two paths, and an identical simulated cost — compilation
changes how fast tuples move, not how many.

Run:  pytest benchmarks/bench_compiled_execution.py --benchmark-only -q -s
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.algebra.expressions import col
from repro.engine.database import Database
from repro.storage import DataType

from .conftest import record_result

#: required batch/compiled wall-clock ratio on the warm parameterized run
COMPILED_MIN_SPEEDUP = float(os.environ.get("COMPILED_MIN_SPEEDUP", "2.0"))

ROWS = 20_000
ROUNDS = 3

#: one selective template, ten bindings — the warm parameterized workload
SQL = "SELECT * FROM T WHERE T.x > ? ORDER BY pa(T.x) + pb(T.x) LIMIT 150"
BINDINGS = [(0.85 + i * 0.005,) for i in range(10)]


def _build_database(execution: str) -> Database:
    db = Database(execution=execution)
    db.create_table("T", [("k", DataType.INT), ("x", DataType.FLOAT)])
    rng = random.Random(7)
    db.insert("T", [(i % 512, rng.random()) for i in range(ROWS)])
    # Expression scorers: the code generator inlines their arithmetic.
    db.register_predicate("pa", ["T.x"], col("T.x") * 0.5 + 0.25)
    db.register_predicate("pb", ["T.x"], col("T.x") * -0.9 + 1.0)
    db.analyze()
    return db


def _observe(result):
    rows = [
        (tuple(s.row.values), s.row.rid, dict(s.scores))
        for s in result.scored_rows
    ]
    return rows, result.metrics


def _warm_sweep(db):
    """Best-of-ROUNDS wall time for draining every binding once."""
    prepared = db.prepare(SQL, strategy="traditional", params=BINDINGS[0])
    prepared.run(params=BINDINGS[0])  # warm: compile + caches + evaluators
    best = float("inf")
    rows = metrics = None
    for __ in range(ROUNDS):
        start = time.perf_counter()
        for binding in BINDINGS:
            rows, metrics = _observe(prepared.run(params=binding))
        best = min(best, time.perf_counter() - start)
    return best, rows, metrics, prepared


def test_cold_compile_cost(benchmark):
    """The one-time plan-to-code cost: template prepare with compilation
    vs without, plus the compiler's own self-reported seconds."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    db = _build_database("compiled")
    start = time.perf_counter()
    prepared = db.prepare(SQL, strategy="traditional", params=BINDINGS[0])
    prepared.run(params=BINDINGS[0])
    first_run = time.perf_counter() - start
    compile_seconds = db.planner.metrics.compile_seconds
    assert prepared.compiled_segments > 0, "template must compile"
    assert compile_seconds > 0
    record_result(
        name="compiled_execution[cold_compile]",
        wall_seconds=first_run,
        compile_seconds=compile_seconds,
        compiled_segments=prepared.compiled_segments,
    )
    print(
        f"\ncold: first prepare+run {first_run * 1000:.1f} ms "
        f"(codegen {compile_seconds * 1000:.2f} ms, "
        f"{prepared.compiled_segments} segment)"
    )
    benchmark.extra_info["compile_seconds"] = compile_seconds


def test_warm_parameterized_speedup(benchmark):
    """Warm reuse: one compiled artifact serves all ten bindings and must
    beat the interpreted batch pipeline by COMPILED_MIN_SPEEDUP."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    db_batch = _build_database("batch")
    db_compiled = _build_database("compiled")
    batch_time, batch_rows, batch_metrics, __ = _warm_sweep(db_batch)
    compiled_time, compiled_rows, compiled_metrics, prepared = _warm_sweep(
        db_compiled
    )
    # One artifact, every binding: reuse must never recompile.
    assert db_compiled.planner.metrics.plans_compiled == 1
    assert prepared.compiled_segments > 0
    # Parity: identical observable sequence and identical simulated cost.
    assert compiled_rows == batch_rows, "batch/compiled divergence"
    assert compiled_metrics.simulated_cost == pytest.approx(
        batch_metrics.simulated_cost, rel=1e-9
    )
    speedup = batch_time / compiled_time
    for mode, elapsed, metrics in (
        ("batch", batch_time, batch_metrics),
        ("compiled", compiled_time, compiled_metrics),
    ):
        record_result(
            name=f"compiled_execution[warm:{mode}]",
            mode=mode,
            bindings=len(BINDINGS),
            wall_seconds=elapsed,
            speedup=speedup if mode == "compiled" else 1.0,
            **metrics.summary(),
        )
    print(
        f"\nwarm x{len(BINDINGS)} bindings: batch {batch_time * 1000:.1f} ms "
        f"-> compiled {compiled_time * 1000:.1f} ms ({speedup:.2f}x)"
    )
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= COMPILED_MIN_SPEEDUP, (
        f"compiled path only {speedup:.2f}x faster than interpreted batch "
        f"(required {COMPILED_MIN_SPEEDUP}x)"
    )


def test_unsupported_shape_falls_back(benchmark):
    """``execution="compiled"`` on a rank-aware plan (µ frontier — no
    compiled twin) must run through the interpreter with no client-visible
    difference from plain batch mode."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    db_batch = _build_database("batch")
    db_compiled = _build_database("compiled")
    sql = "SELECT * FROM T WHERE T.x > ? ORDER BY pa(T.x) + pb(T.x) LIMIT 20"
    params = (0.5,)
    expected, __ = _observe(db_batch.query(sql, params=params))
    observed, __ = _observe(db_compiled.query(sql, params=params))
    assert observed == expected
    record_result(
        name="compiled_execution[fallback:rank-aware]",
        compiled_plans=db_compiled.planner.metrics.plans_compiled,
        rows=len(observed),
    )
