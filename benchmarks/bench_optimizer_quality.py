"""E9: optimizer quality on the §6 workload.

The paper's §6.1 motivates the optimizer by showing the hand-built plans
differ by orders of magnitude.  This bench closes the loop: the 2-D DP
optimizer (and its heuristic and rule-based variants) must pick a plan that
is competitive with the best of the four Figure-11 hand plans — and far
better than the worst — measured by executed simulated cost.

Run:  pytest benchmarks/bench_optimizer_quality.py --benchmark-only -q -s
"""

from __future__ import annotations

import pytest

from repro.optimizer import RankAwareOptimizer, RuleBasedOptimizer, optimize_traditional
from repro.workloads import ALL_PLANS

from .conftest import cached_workload, execute, record

_costs: dict[str, float] = {}
_answers: dict[str, tuple] = {}


def _run_and_record(workload, plan, label):
    scores, metrics = execute(workload, plan, k=workload.config.k)
    _costs[label] = metrics.simulated_cost
    _answers[label] = tuple(round(s, 9) for s in scores)
    return scores, metrics


@pytest.mark.parametrize("plan_name", sorted(ALL_PLANS))
def test_hand_plans(benchmark, plan_name):
    workload = cached_workload()
    builder = ALL_PLANS[plan_name]
    __, metrics = benchmark.pedantic(
        lambda: _run_and_record(workload, builder(workload), plan_name),
        rounds=1,
        iterations=1,
    )
    record(benchmark, metrics, plan=plan_name)


@pytest.mark.parametrize(
    "mode", ["dp", "dp_heuristic", "rule_based", "traditional"]
)
def test_optimizer_chosen(benchmark, mode):
    workload = cached_workload()

    def optimize_and_run():
        if mode == "dp":
            plan = RankAwareOptimizer(
                workload.catalog, workload.spec, sample_ratio=0.05, seed=3
            ).optimize()
        elif mode == "dp_heuristic":
            plan = RankAwareOptimizer(
                workload.catalog,
                workload.spec,
                sample_ratio=0.05,
                seed=3,
                left_deep=True,
                greedy_mu=True,
            ).optimize()
        elif mode == "rule_based":
            plan = RuleBasedOptimizer(
                workload.catalog,
                workload.spec,
                sample_ratio=0.05,
                seed=3,
                max_plans=120,
            ).optimize()
        else:
            plan = optimize_traditional(
                workload.catalog, workload.spec, sample_ratio=0.05, seed=3
            )
        return _run_and_record(workload, plan, mode)

    __, metrics = benchmark.pedantic(optimize_and_run, rounds=1, iterations=1)
    record(benchmark, metrics, mode=mode)


def test_quality_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    needed = {"plan1", "plan2", "plan3", "plan4", "dp", "dp_heuristic"}
    if not needed <= set(_costs):
        pytest.skip("run the parametrized cases first")
    print("\nE9: executed simulated cost, hand plans vs optimizer choices")
    for label in ("plan1", "plan2", "plan3", "plan4", "dp", "dp_heuristic",
                  "rule_based", "traditional"):
        if label in _costs:
            print(f"  {label:<14} {_costs[label]:>12.0f}")
    # All strategies answer identically.
    reference = _answers["plan2"]
    for label, answer in _answers.items():
        assert answer == reference, f"{label} returned different answers"
    best_hand = min(_costs[p] for p in ("plan1", "plan2", "plan3", "plan4"))
    worst_hand = max(_costs[p] for p in ("plan1", "plan2", "plan3", "plan4"))
    # The DP optimizer's choice must be near the best hand plan...
    assert _costs["dp"] <= best_hand * 3
    # ... and dramatically better than the worst (the traditional shape).
    assert _costs["dp"] * 5 < worst_hand
