"""Repeated-query latency: cold optimization vs the plan-cache warm path.

The staged planner's promise is that *repeated* traffic pays for plan
enumeration once.  This bench measures end-to-end latency of the Fig. 9
workload query (3 tables, 5 ranking predicates — the §6 shape whose DP
enumeration dominates cold latency):

* **cold** — planner caches invalidated, then prepare + execute: parse-free
  spec path, full ``(SR, SP)`` enumeration, sample rebuild, predicate
  compilation, execution;
* **warm** — prepare + execute again: plan-cache hit, shared compiled
  evaluators, execution only.

Acceptance target: warm ≥ 5× faster.  Results land in
``benchmark.extra_info`` (``cold_ms``, ``warm_ms``, ``speedup``) for the
perf trajectory.

Run:  pytest benchmarks/bench_plan_cache.py --benchmark-only -q -s
"""

from __future__ import annotations

import os
import statistics
import time

from repro.cli import build_demo_database
from repro.execution import ExecutionContext, run_plan

from .conftest import cached_workload

#: optimizer knobs shared by both paths (identical signatures)
KNOBS = dict(sample_ratio=0.05, seed=3)

#: Fig. 9 shape at interactive scale: fanout j·s = 10 (conftest scale note),
#: small k so the cold run is enumeration-dominated — the repeated-traffic
#: regime the plan cache targets.
WORKLOAD = dict(table_size=500, join_selectivity=0.02, k=5)

COLD_ROUNDS = 5
WARM_ROUNDS = 25

#: required cold/warm ratio; the paper-target default (5x) is what this
#: bench demonstrates locally — CI lowers it via the env var to tolerate
#: shared-runner wall-clock noise without losing the regression gate.
MIN_SPEEDUP = float(os.environ.get("PLAN_CACHE_MIN_SPEEDUP", "5.0"))


def _timed(fn, rounds):
    """Best-of-``rounds`` wall time (robust against scheduler noise)."""
    times = []
    out = None
    for __ in range(rounds):
        start = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - start)
    return min(times), out


def test_plan_cache_speedup(benchmark):
    workload = cached_workload(**WORKLOAD)
    db = workload.database
    planner = db.planner
    k = workload.config.k

    def execute(entry):
        context = ExecutionContext(
            db.catalog, entry.spec.scoring, evaluators=entry.evaluators
        )
        out = run_plan(entry.plan.build(), context, k=k)
        return [round(context.upper_bound(s), 9) for s in out]

    def cold():
        planner.invalidate()
        entry, hit = planner.prepare(workload.spec, **KNOBS)
        assert not hit
        return execute(entry)

    def warm():
        entry, hit = planner.prepare(workload.spec, **KNOBS)
        assert hit
        return execute(entry)

    cold_ms, cold_scores = _timed(cold, COLD_ROUNDS)
    warm()  # the last cold() primed the cache; keep it primed
    warm_ms, warm_scores = _timed(warm, WARM_ROUNDS)
    assert warm_scores == cold_scores  # identical results, identical tie order

    benchmark.pedantic(warm, rounds=WARM_ROUNDS, iterations=1)
    speedup = cold_ms / warm_ms
    benchmark.extra_info.update(
        cold_ms=cold_ms * 1e3,
        warm_ms=warm_ms * 1e3,
        speedup=speedup,
        cache_hits=planner.cache.stats.hits,
    )
    print(
        f"\nplan cache: cold={cold_ms * 1e3:.2f}ms warm={warm_ms * 1e3:.2f}ms "
        f"speedup={speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, f"warm path only {speedup:.1f}x faster"


def test_sql_session_warm_path(benchmark):
    """The SQL front-door equivalent: a session re-executing one statement."""
    db = build_demo_database(seed=7)
    sql = (
        "SELECT * FROM hotel, restaurant WHERE hotel.area = restaurant.area "
        "ORDER BY cheap(hotel.price) + tasty(restaurant.price) LIMIT 10"
    )
    session = db.session(sample_ratio=0.05, seed=1)

    def cold():
        db.planner.invalidate()
        return db.query(sql, sample_ratio=0.05, seed=1)

    cold_ms, cold_result = _timed(cold, COLD_ROUNDS)
    session.execute(sql)  # prime statement + plan cache
    warm_ms, warm_result = _timed(lambda: session.execute(sql), WARM_ROUNDS)
    assert warm_result.plan_cached
    assert warm_result.rows == cold_result.rows

    benchmark.pedantic(lambda: session.execute(sql), rounds=WARM_ROUNDS, iterations=1)
    benchmark.extra_info.update(
        cold_ms=cold_ms * 1e3,
        warm_ms=warm_ms * 1e3,
        hit_rate=db.planner.cache.stats.hit_rate,
    )
