"""Repeated-query latency: cold optimization vs the plan-cache warm path.

The staged planner's promise is that *repeated* traffic pays for plan
enumeration once.  This bench measures end-to-end latency of the Fig. 9
workload query (3 tables, 5 ranking predicates — the §6 shape whose DP
enumeration dominates cold latency):

* **cold** — planner caches invalidated, then prepare + execute: parse-free
  spec path, full ``(SR, SP)`` enumeration, sample rebuild, predicate
  compilation, execution;
* **warm** — prepare + execute again: plan-cache hit, shared compiled
  evaluators, execution only;
* **parameterized** — the same shape with a ``:cap`` bind variable: 20
  *distinct* constants share one template plan (hit-rate 1.0 after the
  first build), the workload regime PR 1's byte-identical cache missed.

Acceptance target: warm ≥ 5× faster.  Results land in
``benchmark.extra_info`` (``cold_ms``, ``warm_ms``, ``speedup``) for the
perf trajectory.

Run:  pytest benchmarks/bench_plan_cache.py --benchmark-only -q -s
"""

from __future__ import annotations

import os
import statistics
import time

from repro.cli import build_demo_database
from repro.execution import ExecutionContext, run_plan

from .conftest import cached_workload

#: optimizer knobs shared by both paths (identical signatures)
KNOBS = dict(sample_ratio=0.05, seed=3)

#: Fig. 9 shape at interactive scale: fanout j·s = 10 (conftest scale note),
#: small k so the cold run is enumeration-dominated — the repeated-traffic
#: regime the plan cache targets.
WORKLOAD = dict(table_size=500, join_selectivity=0.02, k=5)

COLD_ROUNDS = 5
WARM_ROUNDS = 25

#: required cold/warm ratio; the paper-target default (5x) is what this
#: bench demonstrates locally — CI lowers it via the env var to tolerate
#: shared-runner wall-clock noise without losing the regression gate.
MIN_SPEEDUP = float(os.environ.get("PLAN_CACHE_MIN_SPEEDUP", "5.0"))


def _timed(fn, rounds):
    """Best-of-``rounds`` wall time (robust against scheduler noise)."""
    times = []
    out = None
    for __ in range(rounds):
        start = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - start)
    return min(times), out


def test_plan_cache_speedup(benchmark):
    workload = cached_workload(**WORKLOAD)
    db = workload.database
    planner = db.planner
    k = workload.config.k

    def execute(entry):
        context = ExecutionContext(
            db.catalog, entry.spec.scoring, evaluators=entry.evaluators
        )
        out = run_plan(entry.plan.build(), context, k=k)
        return [round(context.upper_bound(s), 9) for s in out]

    def cold():
        planner.invalidate()
        entry, hit = planner.prepare(workload.spec, **KNOBS)
        assert not hit
        return execute(entry)

    def warm():
        entry, hit = planner.prepare(workload.spec, **KNOBS)
        assert hit
        return execute(entry)

    cold_ms, cold_scores = _timed(cold, COLD_ROUNDS)
    warm()  # the last cold() primed the cache; keep it primed
    warm_ms, warm_scores = _timed(warm, WARM_ROUNDS)
    assert warm_scores == cold_scores  # identical results, identical tie order

    benchmark.pedantic(warm, rounds=WARM_ROUNDS, iterations=1)
    speedup = cold_ms / warm_ms
    benchmark.extra_info.update(
        cold_ms=cold_ms * 1e3,
        warm_ms=warm_ms * 1e3,
        speedup=speedup,
        cache_hits=planner.cache.stats.hits,
    )
    print(
        f"\nplan cache: cold={cold_ms * 1e3:.2f}ms warm={warm_ms * 1e3:.2f}ms "
        f"speedup={speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, f"warm path only {speedup:.1f}x faster"


def test_parameterized_template_reuse(benchmark):
    """Bind variables: one cached template plan serving many constants.

    PR 1's cache only amortized byte-identical statements; a workload that
    sweeps constants (every user their own price cap) re-planned on every
    query.  With ``:name`` placeholders the signature generalizes constants
    to slots, so the *whole sweep* shares one plan-cache entry: after the
    first (cold, bind-peeked) build the hit-rate is 1.0 and each run pays
    execution only — the same warm path the literal bench measures.
    """
    # The Fig. 9 shape (3 tables, 5 predicates) whose DP enumeration
    # dominates cold latency, parameterized on a score floor.
    db = cached_workload(**WORKLOAD).database
    template = (
        "SELECT * FROM A, B, C "
        "WHERE A.b AND B.b AND A.jc1 = B.jc1 AND B.jc2 = C.jc2 "
        "AND A.p1 <= :cap "
        "ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1) "
        "LIMIT 5"
    )
    # Sweep the cap through the contested range (top tuples have A.p1
    # near 1): tight caps exclude rows the unconstrained top-5 contains,
    # so bindings visibly change the answer while sharing one plan.
    bindings = [{"cap": 0.60 + 0.02 * i} for i in range(20)]

    def literal(binding):
        return template.replace(":cap", repr(binding["cap"]))

    # The binding both timed paths share (cold literal vs warm template).
    # The loosest cap keeps execution depth near the unconstrained case,
    # so the gate measures planning skipped rather than filter tightness.
    probe = bindings[-1]

    # Cold baseline: what every distinct-constant query pays without
    # parameters (literal texts never share a signature).
    def cold():
        db.planner.invalidate()
        return db.query(literal(probe), **KNOBS)

    cold_ms, cold_result = _timed(cold, COLD_ROUNDS)

    # Build the template once, then sweep constants over the warm path.
    db.planner.invalidate()
    first = db.query(template, params=probe, **KNOBS)
    assert not first.plan_cached  # the cold template build
    assert first.rows == cold_result.rows  # peeked plan, identical answer
    plans_before = db.planner.metrics.plans_built
    hits_before = db.planner.cache.stats.hits
    misses_before = db.planner.cache.stats.misses

    # Timed warm path: one binding, best-of-N (the literal bench's
    # measurement style — execution depth varies with cap tightness, so a
    # sweep average would fold the most expensive bindings into the gate).
    warm_ms, warm_result = _timed(
        lambda: db.query(template, params=probe, **KNOBS), WARM_ROUNDS
    )
    assert warm_result.plan_cached
    assert warm_result.rows == cold_result.rows

    # Untimed sweep: every distinct constant must hit and stay correct.
    results = []
    for binding in bindings:
        result = db.query(template, params=binding, **KNOBS)
        assert result.plan_cached
        results.append(result)

    # Every binding is execution-correct and the sweep built zero plans.
    for binding, result in zip(bindings, results):
        assert result.rows, f"no rows for {binding}"
        # column order follows the chosen join order: look up by name
        position = result.schema.index_of("A.p1")
        assert all(row[position] <= binding["cap"] for row in result.rows)
    assert results[0].rows != results[-1].rows  # bindings really differ
    assert db.planner.metrics.plans_built == plans_before
    hits = db.planner.cache.stats.hits - hits_before
    misses = db.planner.cache.stats.misses - misses_before
    hit_rate = hits / (hits + misses)
    assert hit_rate == 1.0, f"warm template hit-rate {hit_rate:.2f}"

    benchmark.pedantic(
        lambda: db.query(template, params=probe, **KNOBS),
        rounds=WARM_ROUNDS,
        iterations=1,
    )
    speedup = cold_ms / warm_ms
    benchmark.extra_info.update(
        cold_ms=cold_ms * 1e3,
        warm_ms=warm_ms * 1e3,
        speedup=speedup,
        hit_rate=hit_rate,
        distinct_bindings=len(bindings),
    )
    print(
        f"\nparameterized template: cold={cold_ms * 1e3:.2f}ms "
        f"warm={warm_ms * 1e3:.2f}ms speedup={speedup:.1f}x "
        f"hit_rate={hit_rate:.2f} over {len(bindings)} bindings"
    )
    assert speedup >= MIN_SPEEDUP, f"warm template runs only {speedup:.1f}x faster"


def test_sql_session_warm_path(benchmark):
    """The SQL front-door equivalent: a session re-executing one statement."""
    db = build_demo_database(seed=7)
    sql = (
        "SELECT * FROM hotel, restaurant WHERE hotel.area = restaurant.area "
        "ORDER BY cheap(hotel.price) + tasty(restaurant.price) LIMIT 10"
    )
    session = db.session(sample_ratio=0.05, seed=1)

    def cold():
        db.planner.invalidate()
        return db.query(sql, sample_ratio=0.05, seed=1)

    cold_ms, cold_result = _timed(cold, COLD_ROUNDS)
    session.execute(sql)  # prime statement + plan cache
    warm_ms, warm_result = _timed(lambda: session.execute(sql), WARM_ROUNDS)
    assert warm_result.plan_cached
    assert warm_result.rows == cold_result.rows

    benchmark.pedantic(lambda: session.execute(sql), rounds=WARM_ROUNDS, iterations=1)
    benchmark.extra_info.update(
        cold_ms=cold_ms * 1e3,
        warm_ms=warm_ms * 1e3,
        hit_rate=db.planner.cache.stats.hit_rate,
    )
