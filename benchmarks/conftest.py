"""Shared benchmark fixtures and helpers.

Scale note (see DESIGN.md §3): the paper ran on PostgreSQL with tables of
10k–1M rows; a pure-Python engine is ~100–1000× slower per tuple, so the
default benchmark scale divides table sizes by 50 while *preserving the
join fanout* ``j × s`` (the quantity that shapes the Figure 12 curves).
Every bench records, besides wall time, the deterministic simulated cost
and the headline operation counts, which is what the paper's shapes are
made of.

Machine-readable results: every case recorded through :func:`record` /
:func:`record_result` is also appended to a session-wide list that is
written to ``BENCH_results.json`` (override with the
``BENCH_RESULTS_PATH`` env var) when the benchmark session ends — CI
uploads it as an artifact so the perf trajectory is diffable across runs.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.workloads import WorkloadConfig, Workload, build_workload

#: default benchmark scale (paper: s = 100_000, j = 1e-4 → fanout 10)
BENCH_TABLE_SIZE = 2000
BENCH_JOIN_SELECTIVITY = 0.005  # same fanout j*s = 10 at the reduced scale
BENCH_K = 10

_workload_cache: dict[tuple, Workload] = {}

#: session-wide machine-readable results (written at sessionfinish)
_bench_results: list[dict] = []


def cached_workload(**overrides) -> Workload:
    """Build (and memoize) a workload for a parameter combination."""
    config = WorkloadConfig(
        table_size=overrides.pop("table_size", BENCH_TABLE_SIZE),
        join_selectivity=overrides.pop("join_selectivity", BENCH_JOIN_SELECTIVITY),
        predicate_cost=overrides.pop("predicate_cost", 1.0),
        k=overrides.pop("k", BENCH_K),
        seed=overrides.pop("seed", 42),
    )
    if overrides:
        raise TypeError(f"unknown workload overrides: {sorted(overrides)}")
    key = (
        config.table_size,
        config.join_selectivity,
        config.predicate_cost,
        config.k,
        config.seed,
    )
    if key not in _workload_cache:
        _workload_cache[key] = build_workload(config)
    return _workload_cache[key]


def execute(workload: Workload, plan_node, k=None):
    """Run a plan to its k results; return (scores, metrics)."""
    context = ExecutionContext(workload.catalog, workload.scoring)
    out = run_plan(plan_node.build(), context, k=k)
    scores = [context.upper_bound(s) for s in out]
    return scores, context.metrics


def record(benchmark, metrics, **extra) -> None:
    """Attach the paper-relevant counters to the benchmark record (and the
    session's machine-readable results)."""
    benchmark.extra_info.update(metrics.summary())
    benchmark.extra_info.update(extra)
    entry = {"name": getattr(benchmark, "name", None)}
    try:  # wall stats exist only when pytest-benchmark timing is enabled
        entry["wall_seconds"] = benchmark.stats.stats.mean
    except Exception:
        pass
    entry.update(metrics.summary())
    entry.update(extra)
    record_result(**entry)


def record_result(name=None, **fields) -> None:
    """Append one case to the session's ``BENCH_results.json`` payload.

    ``fields`` should at least carry a wall time (``wall_seconds``) and/or
    the simulated cost so the artifact is useful on its own.
    """
    entry = {"name": name}
    entry.update(fields)
    _bench_results.append(entry)


def bench_results_path() -> str:
    return os.environ.get("BENCH_RESULTS_PATH", "BENCH_results.json")


def pytest_sessionfinish(session, exitstatus):
    """Write every recorded case to the machine-readable results file."""
    if not _bench_results:
        return
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": _bench_results,
    }
    with open(bench_results_path(), "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")


@pytest.fixture(scope="session")
def default_workload() -> Workload:
    return cached_workload()
