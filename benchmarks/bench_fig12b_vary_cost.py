"""Figure 12(b): execution cost vs per-predicate cost c.

Paper setting: k = 10, s = 100,000, j = 1e-4, c ∈ {0, 1, 10, 100, 1000}.
Scaled setting: s = 2,000, j = 5e-3, same c sweep.

Expected shape (paper): once the predicate cost dominates, the curves rise
linearly in c and appear as parallel lines in log scale — the *number* of
predicate evaluations does not change with c, only their unit price; the
plan ordering is decided by how many evaluations each plan performs.

Run:  pytest benchmarks/bench_fig12b_vary_cost.py --benchmark-only -q -s
"""

from __future__ import annotations

import pytest

from repro.workloads import ALL_PLANS

from .conftest import cached_workload, execute, record

COSTS = (0.0, 1.0, 10.0, 100.0, 1000.0)
PLANS = ("plan1", "plan2", "plan3", "plan4")

_series: dict[tuple[str, float], tuple[float, int]] = {}


@pytest.mark.parametrize("cost", COSTS)
@pytest.mark.parametrize("plan_name", PLANS)
def test_fig12b(benchmark, plan_name, cost):
    workload = cached_workload(predicate_cost=cost)
    builder = ALL_PLANS[plan_name]

    def run():
        return execute(workload, builder(workload), k=workload.config.k)

    __, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, metrics, plan=plan_name, predicate_cost=cost)
    _series[(plan_name, cost)] = (
        metrics.simulated_cost,
        metrics.predicate_evaluations,
    )


def test_fig12b_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
    if not _series:
        pytest.skip("run the parametrized cases first")
    print("\nFigure 12(b): simulated cost vs predicate cost c (k=10)")
    print("c".rjust(8) + "".join(p.rjust(14) for p in PLANS))
    for cost in COSTS:
        row = f"{cost:>8.0f}"
        for plan_name in PLANS:
            row += f"{_series[(plan_name, cost)][0]:>14.0f}"
        print(row)
    # Shape: evaluation counts are c-invariant (parallel lines in log scale).
    for plan_name in PLANS:
        counts = {_series[(plan_name, cost)][1] for cost in COSTS}
        assert len(counts) == 1, f"{plan_name}: evaluation count changed with c"
    # Plan 1 evaluates every predicate on every joined row: worst at high c.
    assert _series[("plan1", 1000.0)][0] == max(
        _series[(p, 1000.0)][0] for p in PLANS
    )
