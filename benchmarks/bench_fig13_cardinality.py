"""Figure 13: real vs estimated per-operator output cardinalities.

Paper setting: 100k-row tables, j = 1e-4, k = 10, 0.1% sample; the
estimated output cardinality of every operator in plan3 (7 operators) and
plan4 (8 operators) — excluding the root and selection operators — is
compared against the real one.

Scaled setting: 2,000-row tables, j = 5e-3, k = 10, 5% sample (the sample
must keep ~100 rows per table, as the paper's 0.1% of 100k did).

Expected shape (paper): "although we used a very small sample, the real and
estimated output cardinalities of the majority of the operators are in the
same magnitude."

Run:  pytest benchmarks/bench_fig13_cardinality.py --benchmark-only -q -s
"""

from __future__ import annotations

import math

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.optimizer import CardinalityEstimator, FilterPlan, LimitPlan, SampleDatabase
from repro.workloads import plan3, plan4

from .conftest import cached_workload

SAMPLE_RATIO = 0.05


def estimated_and_real(workload, plan_root):
    """Per-operator (label, estimated, real) for a Figure 11 plan.

    Excludes the root limit and the selection (filter) operators, exactly
    as §6.2 does.
    """
    estimator = CardinalityEstimator(
        workload.catalog,
        workload.spec,
        sample=SampleDatabase(workload.catalog, ratio=SAMPLE_RATIO, seed=3),
    )
    # Real cardinalities: run the plan for k results, read operator stats.
    context = ExecutionContext(workload.catalog, workload.scoring)
    operator_root = plan_root.build()
    operator_root.open(context)
    try:
        produced = 0
        while produced < workload.config.k:
            if operator_root.next() is None:
                break
            produced += 1
        # Map plan nodes to operators positionally (same tree shape).
        rows = []
        stack = [(plan_root, operator_root)]
        while stack:
            plan_node, operator = stack.pop()
            if not isinstance(plan_node, (LimitPlan, FilterPlan)):
                estimate = estimator.estimate(plan_node)
                rows.append(
                    (plan_node.label(), estimate, operator.stats.tuples_out)
                )
            stack.extend(zip(plan_node.children, operator.children()))
        return rows
    finally:
        operator_root.close()


@pytest.mark.parametrize(
    "plan_name,builder", [("plan3", plan3), ("plan4", plan4)]
)
def test_fig13(benchmark, plan_name, builder):
    workload = cached_workload()
    plan_root = builder(workload)

    rows = benchmark.pedantic(
        lambda: estimated_and_real(workload, plan_root), rounds=1, iterations=1
    )
    print(f"\nFigure 13 ({plan_name}): estimated vs real output cardinality")
    print(f"{'operator':<32} {'estimated':>12} {'real':>8} {'ratio':>8}")
    within_magnitude = 0
    comparable = 0
    for label, estimate, real in rows:
        ratio = (estimate / real) if real else float("inf")
        print(f"{label:<32} {estimate:>12.1f} {real:>8} {ratio:>8.2f}")
        if real > 0 and estimate > 0:
            comparable += 1
            if 0.1 <= estimate / real <= 10.0:
                within_magnitude += 1
    benchmark.extra_info["operators"] = len(rows)
    benchmark.extra_info["within_one_magnitude"] = within_magnitude
    # Paper: the majority of operators estimated within the same magnitude.
    assert comparable > 0
    assert within_magnitude >= math.ceil(comparable / 2), (
        f"only {within_magnitude}/{comparable} operators within one order "
        "of magnitude"
    )
