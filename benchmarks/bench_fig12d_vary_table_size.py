"""Figure 12(d): execution cost vs table size s.

Paper setting: k = 10, j = 1e-4, c = 1, s ∈ {10k, 100k, 1M}; plan 1 is
excluded ("takes days to finish and is well off the scale").
Scaled setting: s ∈ {500, 2000, 8000} with the number of distinct join
values fixed (j = 5e-3 at every size), mirroring the paper's fixed-j sweep
where the join fanout grows with s.  Plan 1 is likewise excluded at the
largest size and reported at the smaller ones for reference.

Expected shape (paper): plan 2 (rank-scans + HRJN everywhere) stays cheap
even at the largest tables; plan 4 (µ's above a blocking sort-merge join)
degrades much faster, because its SMJ materializes an intermediate result
that grows with s.

Run:  pytest benchmarks/bench_fig12d_vary_table_size.py --benchmark-only -q -s
"""

from __future__ import annotations

import pytest

from repro.workloads import ALL_PLANS

from .conftest import cached_workload, execute, record

SIZES = (500, 2000, 8000)
PLANS = ("plan2", "plan3", "plan4")

_series: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("plan_name", PLANS)
def test_fig12d(benchmark, plan_name, size):
    workload = cached_workload(table_size=size)
    builder = ALL_PLANS[plan_name]

    def run():
        return execute(workload, builder(workload), k=workload.config.k)

    __, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, metrics, plan=plan_name, table_size=size)
    _series[(plan_name, size)] = metrics.simulated_cost


@pytest.mark.parametrize("size", SIZES[:2])
def test_fig12d_plan1_small_sizes(benchmark, size):
    """Plan 1 at the smaller sizes only (excluded at the top size, as in
    the paper)."""
    workload = cached_workload(table_size=size)

    def run():
        return execute(workload, ALL_PLANS["plan1"](workload), k=workload.config.k)

    __, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, metrics, plan="plan1", table_size=size)
    _series[("plan1", size)] = metrics.simulated_cost


def test_fig12d_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
    if not _series:
        pytest.skip("run the parametrized cases first")
    names = ("plan1",) + PLANS
    print("\nFigure 12(d): simulated cost vs table size s (k=10)")
    print("s".rjust(8) + "".join(p.rjust(14) for p in names))
    for size in SIZES:
        row = f"{size:>8}"
        for plan_name in names:
            cost = _series.get((plan_name, size))
            row += f"{cost:>14.0f}" if cost is not None else "     (dropped)"
        print(row)
    # Shape: plan 2 scales best; plan 4 falls behind at the largest size.
    assert _series[("plan2", 8000)] < _series[("plan4", 8000)]
    plan2_growth = _series[("plan2", 8000)] / _series[("plan2", 500)]
    plan4_growth = _series[("plan4", 8000)] / _series[("plan4", 500)]
    assert plan4_growth > plan2_growth
