"""Figure 12(c): execution cost vs join selectivity j.

Paper setting: k = 10, s = 100,000, c = 1, j ∈ {1e-5, 1e-4, 1e-3}
(join fanout j×s ∈ {1, 10, 100}).
Scaled setting: s = 2,000, j ∈ {5e-4, 5e-3, 5e-2} — the same fanouts.

Expected shape (paper): the traditional plan is *competitive only at the
most selective joins* (tiny intermediate results make materialize-then-sort
cheap) and blows up as joins get less selective; rank-aware plans degrade
far more gently.

Run:  pytest benchmarks/bench_fig12c_vary_join_selectivity.py --benchmark-only -q -s
"""

from __future__ import annotations

import pytest

from repro.workloads import ALL_PLANS

from .conftest import cached_workload, execute, record

SELECTIVITIES = (5e-4, 5e-3, 5e-2)
PLANS = ("plan1", "plan2", "plan3", "plan4")

_series: dict[tuple[str, float], float] = {}


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("plan_name", PLANS)
def test_fig12c(benchmark, plan_name, selectivity):
    workload = cached_workload(join_selectivity=selectivity)
    builder = ALL_PLANS[plan_name]

    def run():
        return execute(workload, builder(workload), k=workload.config.k)

    __, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, metrics, plan=plan_name, join_selectivity=selectivity)
    _series[(plan_name, selectivity)] = metrics.simulated_cost


def test_fig12c_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
    if not _series:
        pytest.skip("run the parametrized cases first")
    print("\nFigure 12(c): simulated cost vs join selectivity j (k=10)")
    print("j".rjust(10) + "".join(p.rjust(14) for p in PLANS))
    for selectivity in SELECTIVITIES:
        row = f"{selectivity:>10.0e}"
        for plan_name in PLANS:
            row += f"{_series[(plan_name, selectivity)]:>14.0f}"
        print(row)
    # Shape: plan 1's cost explodes with j much faster than plan 2's.
    plan1_growth = _series[("plan1", 5e-2)] / _series[("plan1", 5e-4)]
    plan2_growth = _series[("plan2", 5e-2)] / _series[("plan2", 5e-4)]
    assert plan1_growth > plan2_growth
    # At every j, the traditional plan is the most expensive or close to it;
    # the gap narrows at the most selective join (paper's observation).
    gap_selective = _series[("plan1", 5e-4)] / _series[("plan2", 5e-4)]
    gap_loose = _series[("plan1", 5e-2)] / _series[("plan2", 5e-2)]
    assert gap_loose > gap_selective
