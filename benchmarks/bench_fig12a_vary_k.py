"""Figure 12(a): execution cost of plans 1–4 vs the number of results k.

Paper setting: s = 100,000, j = 1e-4, c = 1, k ∈ {1, 10, 100, 1000}.
Scaled setting: s = 2,000, j = 5e-3 (same join fanout), k ∈ {1, 10, 100, 1000}.

Expected shape (paper): the traditional plan 1 is *blocking* — its cost is
flat in k and dominates everywhere; the rank-aware plans 2–4 are
*incremental* — cost grows with k and sits 1–2 orders of magnitude below
plan 1 for small k.

Run:  pytest benchmarks/bench_fig12a_vary_k.py --benchmark-only -q -s
"""

from __future__ import annotations

import pytest

from repro.workloads import ALL_PLANS

from .conftest import cached_workload, execute, record

K_VALUES = (1, 10, 100, 1000)
PLANS = ("plan1", "plan2", "plan3", "plan4")

_series: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("plan_name", PLANS)
def test_fig12a(benchmark, plan_name, k):
    workload = cached_workload(k=k)
    builder = ALL_PLANS[plan_name]

    def run():
        return execute(workload, builder(workload, k=k), k=k)

    scores, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, metrics, plan=plan_name, k=k)
    _series[(plan_name, k)] = metrics.simulated_cost
    assert len(scores) <= k


def test_fig12a_report(benchmark):
    """Print the Figure 12(a) series (simulated cost, log-scale shaped)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
    if not _series:
        pytest.skip("run the parametrized cases first")
    print("\nFigure 12(a): simulated cost vs k   (s=2000, j=5e-3, c=1)")
    header = "k".rjust(6) + "".join(p.rjust(14) for p in PLANS)
    print(header)
    for k in K_VALUES:
        row = f"{k:>6}"
        for plan_name in PLANS:
            cost = _series.get((plan_name, k))
            row += f"{cost:>14.0f}" if cost is not None else " " * 14
        print(row)
    # Shape assertions (who wins, how the curves move):
    for k in K_VALUES:
        assert _series[("plan1", k)] > _series[("plan2", k)], "plan2 must win"
    flat = _series[("plan1", 1000)] / _series[("plan1", 1)]
    rising = _series[("plan2", 1000)] / _series[("plan2", 1)]
    assert flat < 1.6, "traditional plan is blocking: flat in k"
    assert rising > 1.6, "rank-aware plan is incremental: grows with k"
