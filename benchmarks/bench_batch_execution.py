"""Batched columnar execution vs row-at-a-time Volcano on unranked segments.

The lowering pass (:func:`repro.optimizer.plans.lower_to_batch`) swaps the
``P = φ`` segments of a plan onto the batch operators of
:mod:`repro.execution.batch`; rank-aware operators stay tuple-at-a-time.
This bench measures the end-to-end wall-clock effect on the §6.1 plans at
the default bench scale and asserts the tentpole target on the plan that
is *all* unranked segment — the traditional materialize-then-sort plan 1
(the shape of ``bench_fig12d``'s worst case):

* **traditional (plan 1)** — index scans, filters, two sort-merge joins
  and a blocking sort: the entire plan below λ_k lowers to one batch
  segment.  Target: ≥ 3× faster than row mode (``BATCH_MIN_SPEEDUP``; CI
  lowers the bar via the env var to tolerate shared-runner noise, the
  default demonstrates the paper-target locally).
* **hybrid (plan 4)** — µ operators above a sort-merge join: only the
  join subtree lowers, the rank-aware top stays incremental.

Every case also checks *parity*: identical rows, scores and rid tie order
between the two paths, and (for these fully-drained shapes) an identical
simulated cost — batching changes how fast tuples move, not how many.

Run:  pytest benchmarks/bench_batch_execution.py --benchmark-only -q -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.optimizer.plans import BatchSegmentPlan, lower_to_batch
from repro.workloads import ALL_PLANS

from .conftest import cached_workload, record_result

#: required row/batch wall-clock ratio on the traditional plan
MIN_SPEEDUP = float(os.environ.get("BATCH_MIN_SPEEDUP", "3.0"))

ROUNDS = 3


def _run(workload, plan_node, k):
    context = ExecutionContext(workload.catalog, workload.scoring)
    start = time.perf_counter()
    out = run_plan(plan_node.build(), context, k=k)
    elapsed = time.perf_counter() - start
    sequence = [(s.row.rid, s.row.values, dict(s.scores)) for s in out]
    return sequence, elapsed, context.metrics


def _best_of(workload, plan_node, k, rounds=ROUNDS):
    best = None
    for __ in range(rounds):
        sequence, elapsed, metrics = _run(workload, plan_node, k)
        if best is None or elapsed < best[1]:
            best = (sequence, elapsed, metrics)
    return best


def _compare(plan_name: str):
    workload = cached_workload()
    k = workload.config.k
    plan = ALL_PLANS[plan_name](workload)
    lowered = lower_to_batch(plan)
    row_sequence, row_time, row_metrics = _best_of(workload, plan, k)
    batch_sequence, batch_time, batch_metrics = _best_of(workload, lowered, k)
    assert batch_sequence == row_sequence, f"{plan_name}: row/batch divergence"
    speedup = row_time / batch_time
    for mode, elapsed, metrics in (
        ("row", row_time, row_metrics),
        ("batch", batch_time, batch_metrics),
    ):
        record_result(
            name=f"batch_execution[{plan_name}:{mode}]",
            plan=plan_name,
            mode=mode,
            wall_seconds=elapsed,
            **metrics.summary(),
        )
    print(
        f"\n{plan_name}: row {row_time * 1000:.1f} ms -> batch "
        f"{batch_time * 1000:.1f} ms ({speedup:.2f}x), "
        f"simulated cost {row_metrics.simulated_cost:.0f} / "
        f"{batch_metrics.simulated_cost:.0f}"
    )
    return speedup, row_metrics, batch_metrics, lowered


def test_traditional_plan_batch_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    speedup, row_metrics, batch_metrics, lowered = _compare("plan1")
    # The whole sort input is one maximal batch segment.
    segments = [n for n in lowered.walk() if isinstance(n, BatchSegmentPlan)]
    assert len(segments) == 1
    # Same work, delivered faster: the simulated (operation-count) cost of
    # the two paths agrees on this fully-drained plan.
    assert batch_metrics.simulated_cost == pytest.approx(
        row_metrics.simulated_cost, rel=1e-9
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.2f}x faster than row mode "
        f"(required {MIN_SPEEDUP}x)"
    )
    benchmark.extra_info.update(
        {
            "speedup": speedup,
            "row_cost": row_metrics.simulated_cost,
            "batch_cost": batch_metrics.simulated_cost,
        }
    )


def test_hybrid_plan_parity_and_no_regression(benchmark):
    """Plan 4 lowers only its join subtree; the µ chain above stays
    incremental.  Batch must never be slower than row mode by more than
    measurement noise."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    speedup, row_metrics, batch_metrics, __ = _compare("plan4")
    assert batch_metrics.simulated_cost == pytest.approx(
        row_metrics.simulated_cost, rel=1e-9
    )
    assert speedup >= 0.8, f"batch path regressed plan4: {speedup:.2f}x"


def test_rank_aware_plan_untouched(benchmark):
    """Plan 2 is fully rank-aware: nothing lowers except (possibly) bare
    scans, and results are identical either way."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    workload = cached_workload()
    plan = ALL_PLANS["plan2"](workload)
    lowered = lower_to_batch(plan)
    kinds = {type(node).__name__ for node in lowered.walk()}
    assert "MuPlan" in kinds and "HRJNPlan" in kinds
    row_sequence, __, __ = _run(workload, plan, workload.config.k)
    batch_sequence, __, __ = _run(workload, lowered, workload.config.k)
    assert batch_sequence == row_sequence
