"""Batched columnar execution vs row-at-a-time Volcano on unranked segments.

The lowering (:func:`repro.optimizer.plans.lower_to_batch` for the
unconditional mode, the cost-governed decision of
:mod:`repro.optimizer.hybrid` under ``batch_execution="auto"``) swaps the
``P = φ`` segments of a plan onto the batch operators of
:mod:`repro.execution.batch`; rank-aware operators stay tuple-at-a-time.
This bench measures the end-to-end wall-clock effect on the §6.1 plans at
the default bench scale and asserts the tentpole target on the plan that
is *all* unranked segment — the traditional materialize-then-sort plan 1
(the shape of ``bench_fig12d``'s worst case):

* **traditional (plan 1)** — index scans, filters, two sort-merge joins
  and a blocking sort: the entire plan below λ_k lowers to one batch
  segment.  Target: ≥ 3× faster than row mode (``BATCH_MIN_SPEEDUP``; CI
  lowers the bar via the env var to tolerate shared-runner noise, the
  default demonstrates the paper-target locally).
* **hybrid (plan 4)** — µ operators above a sort-merge join: only the
  join subtree lowers, the rank-aware top stays incremental; the µ
  frontier prescores its predicate vectorized per batch.
* **auto mode** — the costed decision agrees with the measurements: the
  bench-scale traditional plan lowers, a tiny-table twin stays row-mode.
* **NumPy backend** — the same lowered plans with
  ``REPRO_VECTOR_BACKEND=numpy`` kernels, identical results required.

Every case also checks *parity*: identical rows, scores and rid tie order
between the paths, and (for these fully-drained shapes) an identical
simulated cost — batching changes how fast tuples move, not how many.

Run:  pytest benchmarks/bench_batch_execution.py --benchmark-only -q -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.execution import ExecutionContext, run_plan
from repro.execution import morsels, vectors
from repro.execution.batch import BatchToRow
from repro.optimizer.plans import (
    BatchSegmentPlan,
    FilterPlan,
    LimitPlan,
    SeqScanPlan,
    SortPlan,
    lower_to_batch,
)
from repro.storage import Catalog, DataType, Schema
from repro.workloads import ALL_PLANS, WorkloadConfig, build_workload

from .conftest import cached_workload, record_result

#: required row/batch wall-clock ratio on the traditional plan
MIN_SPEEDUP = float(os.environ.get("BATCH_MIN_SPEEDUP", "3.0"))

#: required DOP-4/DOP-1 wall-clock ratio on the morsel sweep (0 = record
#: only; CI sets 1.8 on multi-core runners)
PARALLEL_MIN_SPEEDUP = float(os.environ.get("PARALLEL_MIN_SPEEDUP", "0"))

#: degrees of parallelism the sweep measures
DOP_SWEEP = (1, 2, 4, 8)

ROUNDS = 3


def _run(workload, plan_node, k):
    context = ExecutionContext(workload.catalog, workload.scoring)
    start = time.perf_counter()
    out = run_plan(plan_node.build(), context, k=k)
    elapsed = time.perf_counter() - start
    sequence = [(s.row.rid, s.row.values, dict(s.scores)) for s in out]
    return sequence, elapsed, context.metrics


def _best_of(workload, plan_node, k, rounds=ROUNDS):
    best = None
    for __ in range(rounds):
        sequence, elapsed, metrics = _run(workload, plan_node, k)
        if best is None or elapsed < best[1]:
            best = (sequence, elapsed, metrics)
    return best


def _compare(plan_name: str):
    workload = cached_workload()
    k = workload.config.k
    plan = ALL_PLANS[plan_name](workload)
    lowered = lower_to_batch(plan)
    row_sequence, row_time, row_metrics = _best_of(workload, plan, k)
    batch_sequence, batch_time, batch_metrics = _best_of(workload, lowered, k)
    assert batch_sequence == row_sequence, f"{plan_name}: row/batch divergence"
    speedup = row_time / batch_time
    for mode, elapsed, metrics in (
        ("row", row_time, row_metrics),
        ("batch", batch_time, batch_metrics),
    ):
        record_result(
            name=f"batch_execution[{plan_name}:{mode}]",
            plan=plan_name,
            mode=mode,
            wall_seconds=elapsed,
            **metrics.summary(),
        )
    print(
        f"\n{plan_name}: row {row_time * 1000:.1f} ms -> batch "
        f"{batch_time * 1000:.1f} ms ({speedup:.2f}x), "
        f"simulated cost {row_metrics.simulated_cost:.0f} / "
        f"{batch_metrics.simulated_cost:.0f}"
    )
    return speedup, row_metrics, batch_metrics, lowered


def test_traditional_plan_batch_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    speedup, row_metrics, batch_metrics, lowered = _compare("plan1")
    # The whole sort input is one maximal batch segment.
    segments = [n for n in lowered.walk() if isinstance(n, BatchSegmentPlan)]
    assert len(segments) == 1
    # Same work, delivered faster: the simulated (operation-count) cost of
    # the two paths agrees on this fully-drained plan.
    assert batch_metrics.simulated_cost == pytest.approx(
        row_metrics.simulated_cost, rel=1e-9
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.2f}x faster than row mode "
        f"(required {MIN_SPEEDUP}x)"
    )
    benchmark.extra_info.update(
        {
            "speedup": speedup,
            "row_cost": row_metrics.simulated_cost,
            "batch_cost": batch_metrics.simulated_cost,
        }
    )


def test_hybrid_plan_parity_and_no_regression(benchmark):
    """Plan 4 lowers only its join subtree; the µ chain above stays
    incremental.  Batch must never be slower than row mode by more than
    measurement noise."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    speedup, row_metrics, batch_metrics, __ = _compare("plan4")
    assert batch_metrics.simulated_cost == pytest.approx(
        row_metrics.simulated_cost, rel=1e-9
    )
    assert speedup >= 0.8, f"batch path regressed plan4: {speedup:.2f}x"


def test_rank_aware_plan_untouched(benchmark):
    """Plan 2 is fully rank-aware: nothing lowers except (possibly) bare
    scans, and results are identical either way."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    workload = cached_workload()
    plan = ALL_PLANS["plan2"](workload)
    lowered = lower_to_batch(plan)
    kinds = {type(node).__name__ for node in lowered.walk()}
    assert "MuPlan" in kinds and "HRJNPlan" in kinds
    row_sequence, __, __ = _run(workload, plan, workload.config.k)
    batch_sequence, __, __ = _run(workload, lowered, workload.config.k)
    assert batch_sequence == row_sequence


def test_frontier_vectorization_speedup(benchmark):
    """The vectorized µ frontier: plan 4's µ prescores its predicate per
    batch inside BatchToRow.  Same results, same charges, measurably less
    per-tuple dispatch than the unvectorized frontier."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    workload = cached_workload()
    k = workload.config.k
    lowered = lower_to_batch(ALL_PLANS["plan4"](workload))
    on_sequence, on_time, on_metrics = _best_of(workload, lowered, k, rounds=5)
    original = BatchToRow.request_prescore
    BatchToRow.request_prescore = lambda self, name: False
    try:
        off_sequence, off_time, off_metrics = _best_of(
            workload, lowered, k, rounds=5
        )
    finally:
        BatchToRow.request_prescore = original
    assert on_sequence == off_sequence
    assert on_metrics.simulated_cost == pytest.approx(
        off_metrics.simulated_cost, rel=1e-9
    )
    speedup = off_time / on_time
    for mode, elapsed, metrics in (
        ("frontier-unvectorized", off_time, off_metrics),
        ("frontier-vectorized", on_time, on_metrics),
    ):
        record_result(
            name=f"batch_execution[plan4:{mode}]",
            plan="plan4",
            mode=mode,
            wall_seconds=elapsed,
            **metrics.summary(),
        )
    print(
        f"\nplan4 frontier: unvectorized {off_time * 1000:.1f} ms -> "
        f"prescored {on_time * 1000:.1f} ms ({speedup:.2f}x)"
    )
    benchmark.extra_info["frontier_speedup"] = speedup
    # The prescored frontier must never regress the batch path.
    assert speedup >= 0.9, f"frontier prescore regressed plan4: {speedup:.2f}x"


@pytest.mark.skipif(not vectors.numpy_available(), reason="numpy not installed")
def test_numpy_backend_parity_and_speedup(benchmark):
    """The NumPy column-vector backend behind the same Batch API: plan 1's
    lowered twin with vectorized filter/sort/frontier kernels — identical
    rows, scores, tie order and simulated cost, recorded alongside the
    pure-python numbers."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    workload = cached_workload()
    k = workload.config.k
    lowered = lower_to_batch(ALL_PLANS["plan1"](workload))
    previous = vectors.backend()
    try:
        vectors.set_backend("python")
        python_sequence, python_time, python_metrics = _best_of(workload, lowered, k)
        vectors.set_backend("numpy")
        numpy_sequence, numpy_time, numpy_metrics = _best_of(workload, lowered, k)
    finally:
        vectors.set_backend(previous)
    assert numpy_sequence == python_sequence
    assert numpy_metrics.simulated_cost == pytest.approx(
        python_metrics.simulated_cost, rel=1e-9
    )
    speedup = python_time / numpy_time
    record_result(
        name="batch_execution[plan1:numpy]",
        plan="plan1",
        mode="numpy",
        wall_seconds=numpy_time,
        **numpy_metrics.summary(),
    )
    print(
        f"\nplan1 batch: python {python_time * 1000:.1f} ms -> numpy "
        f"{numpy_time * 1000:.1f} ms ({speedup:.2f}x)"
    )
    benchmark.extra_info["numpy_speedup"] = speedup


def _parallel_sweep_workload(n=6000, spin=600, seed=13):
    """A predicate-dominated single-table top-k: the shape where morsel
    parallelism pays.  Spin-looped predicates keep scoring on the
    pure-python path (``RankingKernel`` refuses them), so per-morsel work
    is real CPU that the fork backend spreads over cores; the per-morsel
    top-k keeps each task's result (k entries + a metrics sink) tiny."""
    import random

    catalog = Catalog()
    table = catalog.create_table(
        "T", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    rng = random.Random(seed)
    for __ in range(n):
        table.insert([rng.randrange(5), round(rng.random(), 6)])
    pa = RankingPredicate("pa", ["x"], lambda x: x, cost=1.0, spin_loops=spin)
    pb = RankingPredicate("pb", ["x"], lambda x: 1 - x, cost=1.0, spin_loops=spin)
    scoring = ScoringFunction([pa, pb])
    condition = BooleanPredicate(col("T.k") > 0, "k>0")

    def make_plan(k=10):
        return LimitPlan(
            SortPlan(
                FilterPlan(SeqScanPlan("T"), condition),
                all_predicates=frozenset({"pa", "pb"}),
            ),
            k,
        )

    return catalog, scoring, make_plan


def _drain_plan(catalog, scoring, plan_node, k):
    context = ExecutionContext(catalog, scoring)
    start = time.perf_counter()
    out = run_plan(plan_node.build(), context, k=k)
    elapsed = time.perf_counter() - start
    sequence = [(s.row.rid, s.row.values, dict(s.scores)) for s in out]
    return sequence, elapsed, context.metrics


def test_parallel_dop_sweep(benchmark, monkeypatch):
    """Morsel-driven intra-query parallelism: the DOP 1/2/4/8 speedup
    curve on a predicate-dominated sort plan, byte-identical results at
    every DOP, written to BENCH_results.json.  With PARALLEL_MIN_SPEEDUP
    set (CI), DOP 4 must beat serial by that factor."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    # Stamp the core count up front: a flat curve on a single-core runner
    # is expected, and the recorded artifact must say so on its own.
    benchmark.extra_info["cores"] = cores
    if cores < 2:
        record_result(
            name="parallel_execution[skipped]",
            cores=cores,
            skipped="single-core runner: DOP sweep cannot demonstrate speedup",
        )
        pytest.skip(f"DOP sweep needs >= 2 cores (have {cores})")
    if PARALLEL_MIN_SPEEDUP > 0 and cores < 4:
        pytest.skip(f"PARALLEL_MIN_SPEEDUP gate needs >= 4 cores (have {cores})")
    if PARALLEL_MIN_SPEEDUP > 0 and not morsels.fork_available():
        pytest.skip("PARALLEL_MIN_SPEEDUP gate needs the fork backend")

    n = 6000
    catalog, scoring, make_plan = _parallel_sweep_workload(n=n)
    # 16 morsels: enough tasks for every swept DOP to divide the work.
    monkeypatch.setenv("REPRO_MORSEL_SIZE", str(n // 16))
    backend = "thread"
    if morsels.fork_available():
        # Process workers: this workload's per-morsel cost is pure-python
        # predicate spinning, which threads cannot overlap under the GIL.
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        backend = "process"

    base_sequence = None
    base_time = None
    curve: dict[int, float] = {}
    for dop in DOP_SWEEP:
        lowered = lower_to_batch(make_plan(), parallelism=dop)
        best = None
        for __ in range(2):
            sequence, elapsed, metrics = _drain_plan(catalog, scoring, lowered, 10)
            if best is None or elapsed < best[1]:
                best = (sequence, elapsed, metrics)
        sequence, elapsed, metrics = best
        if dop == 1:
            base_sequence, base_time = sequence, elapsed
        else:
            assert sequence == base_sequence, f"dop={dop}: parallel divergence"
        curve[dop] = base_time / elapsed
        record_result(
            name=f"parallel_execution[dop={dop}]",
            dop=dop,
            backend=backend,
            cores=cores,
            wall_seconds=elapsed,
            speedup=curve[dop],
            **metrics.summary(),
        )
    print(
        "\nmorsel DOP sweep (%s backend, %d cores): " % (backend, cores)
        + ", ".join(f"dop {d}: {s:.2f}x" for d, s in curve.items())
    )
    benchmark.extra_info.update(
        {"backend": backend, **{f"speedup_dop{d}": s for d, s in curve.items()}}
    )
    if PARALLEL_MIN_SPEEDUP > 0:
        assert curve[4] >= PARALLEL_MIN_SPEEDUP, (
            f"DOP 4 only {curve[4]:.2f}x over serial "
            f"(required {PARALLEL_MIN_SPEEDUP}x)"
        )


def test_auto_mode_decisions_and_parity(benchmark):
    """``batch_execution="auto"``: the costed decision lowers the
    bench-scale traditional plan (and matches the unconditional path's
    results exactly) while a tiny-table twin of the same query stays
    tuple-at-a-time."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sql = (
        "SELECT * FROM A, B, C WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 "
        "AND A.b AND B.b ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + "
        "f4(B.p2) + f5(C.p1) LIMIT 10"
    )

    # Large (bench-scale) workload: the traditional plan's segment lowers.
    large = cached_workload()
    planner = large.database.planner
    previous_mode = planner.batch_execution
    try:
        planner.batch_execution = "auto"
        entry, __ = planner.prepare(
            sql, strategy="traditional", sample_ratio=0.05, seed=7, use_cache=False
        )
        assert entry.decisions
        lowered_segments = [
            n for n in entry.executable.walk() if isinstance(n, BatchSegmentPlan)
        ]
        assert lowered_segments, "bench-scale traditional plan must lower"
        top = lowered_segments[0].decision
        start = time.perf_counter()
        auto_result = large.database.execute(
            entry.executable, entry.scoring, k=entry.k, evaluators=entry.evaluators
        )
        auto_time = time.perf_counter() - start
        # Parity against the pure row-mode twin of the same template.
        planner.batch_execution = False
        row_entry, __ = planner.prepare(
            sql, strategy="traditional", sample_ratio=0.05, seed=7, use_cache=False
        )
        row_result = large.database.execute(
            row_entry.executable, row_entry.scoring, k=row_entry.k
        )
        assert auto_result.rows == row_result.rows
        assert auto_result.scores == row_result.scores
    finally:
        planner.batch_execution = previous_mode
    record_result(
        name="batch_execution[auto:traditional-large]",
        mode="auto",
        decision=top.winner,
        row_cost_estimate=top.row_cost,
        batch_cost_estimate=top.batch_cost,
        wall_seconds=auto_time,
        **auto_result.metrics.summary(),
    )
    print(
        f"\nauto (large): {top.segment} row est {top.row_cost:,.0f} vs "
        f"batch est {top.batch_cost:,.0f} -> {top.winner}, "
        f"executed in {auto_time * 1000:.1f} ms"
    )

    # Tiny twin: a filtered single-table top-k over 64-row tables — the
    # same σ-over-scan segment shape that lowers at bench scale stays
    # tuple-at-a-time under the same pricing.
    tiny = build_workload(
        WorkloadConfig(table_size=64, join_selectivity=0.15, k=10, seed=7)
    )
    tiny.database.planner.batch_execution = "auto"
    tiny_sql = "SELECT * FROM A WHERE A.b ORDER BY f1(A.p1) + f2(A.p2) LIMIT 10"
    tiny_entry, __ = tiny.database.planner.prepare(
        tiny_sql, strategy="traditional", sample_ratio=0.5, seed=7
    )
    assert tiny_entry.decisions, "tiny segment must be priced"
    row_kept = [d for d in tiny_entry.decisions if d.winner == "row"]
    assert row_kept, "64-row segments must stay tuple-at-a-time"
    assert not any(
        isinstance(n, BatchSegmentPlan) for n in tiny_entry.executable.walk()
    )
    record_result(
        name="batch_execution[auto:traditional-tiny]",
        mode="auto",
        decision="row",
        decisions_total=len(tiny_entry.decisions),
        decisions_row=len(row_kept),
        row_cost_estimate=row_kept[0].row_cost,
        batch_cost_estimate=row_kept[0].batch_cost,
    )
    print(
        f"auto (tiny): {row_kept[0].segment} row est "
        f"{row_kept[0].row_cost:,.0f} vs batch est "
        f"{row_kept[0].batch_cost:,.0f} -> row"
    )
    benchmark.extra_info.update(
        {"large_decision": top.winner, "tiny_row_segments": len(row_kept)}
    )
