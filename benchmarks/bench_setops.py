"""§4.2's set-operation claim: with ranked inputs, ∪/∩/− become
incremental instead of exhausting both inputs.

Compares, for a top-k over the union/intersection of two ranked relations:

* the **incremental rank-aware operator** (stops pulling once the top-k is
  certain), vs
* the **naive blocking scheme** (drain both inputs, merge, sort) modelled
  by draining the same operator fully.

Expected shape: for small k the incremental operator consumes a fraction of
the inputs; the blocking baseline's cost is k-independent.

Run:  pytest benchmarks/bench_setops.py --benchmark-only -q -s
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.predicates import RankingPredicate, ScoringFunction
from repro.execution import (
    ExecutionContext,
    Mu,
    RankIntersect,
    RankUnion,
    SeqScan,
    run_plan,
)
from repro.storage import Catalog, DataType, RankIndex, Schema

N = 4000


def build():
    rng = random.Random(71)
    catalog = Catalog()
    # A shared universe of tuples so the two relations overlap by ~50%.
    universe = [
        (i, round(rng.random(), 6)) for i in range(round(N * 1.5))
    ]
    sides = {"L": universe[:N], "R": universe[len(universe) - N:]}
    for name, rows in sides.items():
        table = catalog.create_table(
            name, Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
        )
        for row in rows:
            table.insert(list(row))
    pa = RankingPredicate("pa", ["x"], lambda x: x)
    pb = RankingPredicate("pb", ["x"], lambda x: (x + x * x) / 2)
    scoring = ScoringFunction([pa, pb])
    for name, predicate in (("L", pa), ("R", pb)):
        table = catalog.table(name)
        table.attach_index(
            RankIndex(
                f"{name}_{predicate.name}",
                table.schema,
                predicate.name,
                predicate.compile(table.schema),
            )
        )
    return catalog, scoring


def operator(kind):
    from repro.execution import RankScan

    left = RankScan("L", "pa")
    right = RankScan("R", "pb")
    if kind == "union":
        return RankUnion(left, right)
    return RankIntersect(left, right)


_series = {}


@pytest.mark.parametrize("k", [10, 100, None])
@pytest.mark.parametrize("kind", ["union", "intersect"])
def test_setop_incremental(benchmark, kind, k):
    catalog, scoring = build()

    def run():
        context = ExecutionContext(catalog, scoring)
        out = run_plan(operator(kind), context, k=k)
        return out, context

    out, context = benchmark.pedantic(run, rounds=1, iterations=1)
    label = "drain" if k is None else f"k={k}"
    _series[(kind, label)] = context.metrics.tuples_scanned
    benchmark.extra_info.update(
        {"kind": kind, "k": label, "tuples_scanned": context.metrics.tuples_scanned}
    )
    if k is not None:
        assert len(out) == k


def test_setops_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    needed = {("union", "k=10"), ("union", "drain")}
    if not needed <= set(_series):
        pytest.skip("run the parametrized cases first")
    print("\n§4.2 set operations: tuples consumed (of 2×4000 available)")
    print(f"{'operator':<12} {'k=10':>8} {'k=100':>8} {'drain':>8}")
    for kind in ("union", "intersect"):
        row = f"{kind:<12}"
        for label in ("k=10", "k=100", "drain"):
            row += f"{_series.get((kind, label), 0):>8}"
        print(row)
    # Incremental: small k consumes far less than a full drain.
    assert _series[("union", "k=10")] < _series[("union", "drain")] / 3
    assert _series[("intersect", "k=10")] < _series[("intersect", "drain")]
