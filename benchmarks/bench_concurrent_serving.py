"""Concurrent serving: aggregate throughput and latency by session count.

Closed-loop multi-user serving: N client sessions each issue a statement,
wait ``THINK_SECONDS`` (a user reading results), and issue the next — the
classic closed-loop model (cf. TPC keying/think times).  Executions are
GIL-bound Python, so the worker pool's win is *overlap*: while one
session's statement executes, the other sessions' think times and socket
waits cost nothing.  Aggregate throughput should therefore scale with the
session count until execution demand saturates one core — the shape a
serving engine must show before sharding/async work can build on it.

Measured per (session count, cache state):

* **cold**  — plan cache invalidated at start: the first execution of each
  template pays enumeration, everyone else reuses it (shared cache);
* **warm**  — a priming session pre-plans every template: all sessions hit
  from their first statement.

Acceptance gate: warm aggregate throughput at 4 sessions ≥
``SERVING_MIN_SPEEDUP`` (default 2.0) × the 1-session baseline, and the
shared-cache hit rate across a warm 16-session run ≥ 0.9.

Run:  pytest benchmarks/bench_concurrent_serving.py -q -s --benchmark-disable
"""

from __future__ import annotations

import os
import statistics
import threading
import time

from repro.engine.database import Database
from repro.storage.schema import DataType

from .conftest import record_result

SESSION_COUNTS = (1, 4, 16)
STATEMENTS_PER_SESSION = 24
THINK_SECONDS = 0.010
WORKER_THREADS = 8

MIN_SPEEDUP = float(os.environ.get("SERVING_MIN_SPEEDUP", "2.0"))
MIN_WARM_HIT_RATE = 0.9

#: the served statement mix: rank scan, weighted scan, equi-join, bound
#: template (two bindings) — repeated-traffic shapes, all top-k
TEMPLATES = [
    ("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 5", None),
    (
        "SELECT * FROM hotel ORDER BY cheap(hotel.price) + starry(hotel.stars) "
        "LIMIT 5",
        None,
    ),
    (
        "SELECT * FROM hotel, restaurant WHERE hotel.area = restaurant.area "
        "ORDER BY cheap(hotel.price) + tasty(restaurant.price) LIMIT 3",
        None,
    ),
    (
        "SELECT * FROM hotel WHERE hotel.price <= :cap "
        "ORDER BY cheap(hotel.price) LIMIT 5",
        {"cap": 150.0},
    ),
    (
        "SELECT * FROM hotel WHERE hotel.price <= :cap "
        "ORDER BY cheap(hotel.price) LIMIT 5",
        {"cap": 280.0},
    ),
]


def build_serving_db(rows: int = 150) -> Database:
    db = Database()
    db.create_table(
        "hotel",
        [
            ("name", DataType.TEXT),
            ("price", DataType.FLOAT),
            ("stars", DataType.INT),
            ("area", DataType.INT),
        ],
    )
    db.create_table(
        "restaurant",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("area", DataType.INT)],
    )
    db.insert(
        "hotel",
        [
            (f"hotel-{i}", 40.0 + (i * 7919) % 360, 1 + i % 5, i % 10)
            for i in range(rows)
        ],
    )
    db.insert(
        "restaurant",
        [(f"rest-{i}", 10.0 + (i * 104729) % 80, i % 10) for i in range(rows)],
    )
    db.register_predicate("cheap", ["hotel.price"], lambda p: max(0.0, 1 - p / 400))
    db.register_predicate("starry", ["hotel.stars"], lambda s: s / 5)
    db.register_predicate("tasty", ["restaurant.price"], lambda p: max(0.0, 1 - p / 90))
    db.create_rank_index("hotel", "cheap")
    db.create_rank_index("restaurant", "tasty")
    db.create_column_index("hotel", "area")
    db.create_column_index("restaurant", "area")
    db.analyze()
    return db


def drive_sessions(server, sessions: int) -> dict:
    """Run the closed loop; returns wall/throughput/latency/hit-rate."""
    latencies: list[float] = []
    lock = threading.Lock()
    errors: list[BaseException] = []
    clients = [server.session(sample_ratio=0.05, seed=1) for __ in range(sessions)]

    def loop(client) -> None:
        mine: list[float] = []
        try:
            for i in range(STATEMENTS_PER_SESSION):
                sql, params = TEMPLATES[i % len(TEMPLATES)]
                start = time.perf_counter()
                client.execute(sql, params=params)
                mine.append(time.perf_counter() - start)
                time.sleep(THINK_SECONDS)
        except BaseException as error:  # pragma: no cover - diagnostic
            errors.append(error)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=loop, args=(c,)) for c in clients]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    assert not errors, errors[0]

    summaries = [c.summary() for c in clients]
    hits = sum(s["plan_cache_hits"] for s in summaries)
    misses = sum(s["plan_cache_misses"] for s in summaries)
    for client in clients:
        client.close()
    total = sessions * STATEMENTS_PER_SESSION
    latencies.sort()
    return {
        "sessions": sessions,
        "statements": total,
        "wall_seconds": wall,
        "throughput_qps": total / wall,
        "mean_latency_ms": statistics.fmean(latencies) * 1e3,
        "p95_latency_ms": latencies[int(len(latencies) * 0.95) - 1] * 1e3,
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
    }


def measure(db: Database, sessions: int, warm: bool) -> dict:
    db.planner.invalidate()  # every case starts from the same cold planner
    with db.serve(workers=WORKER_THREADS) as server:
        if warm:
            with server.session(sample_ratio=0.05, seed=1) as primer:
                for sql, params in TEMPLATES:
                    primer.execute(sql, params=params)
        stats = drive_sessions(server, sessions)
    stats["cache"] = "warm" if warm else "cold"
    return stats


def test_concurrent_serving_throughput():
    db = build_serving_db()
    results: dict[tuple[int, str], dict] = {}
    for warm in (False, True):
        for sessions in SESSION_COUNTS:
            stats = measure(db, sessions, warm)
            results[(sessions, stats["cache"])] = stats
            record_result(
                name=f"concurrent_serving[{sessions}sessions:{stats['cache']}]",
                **stats,
            )
            print(
                f"  {sessions:>2} sessions ({stats['cache']:4}): "
                f"{stats['throughput_qps']:7.1f} q/s, "
                f"mean {stats['mean_latency_ms']:5.1f} ms, "
                f"p95 {stats['p95_latency_ms']:5.1f} ms, "
                f"hit rate {stats['hit_rate']:.2f}"
            )

    # The serving gates: concurrency scales aggregate throughput, and the
    # shared cache serves repeated templates from every session.
    speedup = (
        results[(4, "warm")]["throughput_qps"]
        / results[(1, "warm")]["throughput_qps"]
    )
    print(f"  4-session warm speedup: {speedup:.2f}x (gate {MIN_SPEEDUP}x)")
    record_result(
        name="concurrent_serving[speedup]",
        speedup_4_sessions=speedup,
        gate=MIN_SPEEDUP,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"aggregate throughput at 4 sessions only {speedup:.2f}x the "
        f"1-session baseline (need {MIN_SPEEDUP}x)"
    )
    assert results[(16, "warm")]["hit_rate"] >= MIN_WARM_HIT_RATE
    db.close()
